package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"psk/internal/config"
	"psk/internal/core"
	"psk/internal/obs"
	"psk/internal/search"
	"psk/internal/table"
)

const patientsCSV = `Age,ZipCode,Sex,Illness
25,41076,M,Flu
29,41076,M,Asthma
31,41076,F,Diabetes
38,41099,F,Flu
34,41099,M,Diabetes
36,41099,M,Asthma
52,43102,M,Flu
55,43102,F,Heart Disease
58,43102,M,Diabetes
61,43103,F,Asthma
64,43103,M,Flu
67,43103,F,Heart Disease
`

const jobJSON = `{
  "quasiIdentifiers": ["Age", "ZipCode", "Sex"],
  "confidential": ["Illness"],
  "k": 3, "p": 2, "maxSuppress": 2,
  "types": {"Age": "int"},
  "hierarchies": {
    "Age":     {"type": "interval",
                "levels": [{"name": "decades", "width": 10, "min": 20, "max": 70},
                           {"cuts": [50], "labels": ["<50", ">=50"]},
                           {"labels": ["*"]}]},
    "ZipCode": {"type": "prefixSteps", "width": 5, "suppress": [2, 5]},
    "Sex":     {"type": "flat", "top": "Person"}
  }
}`

func testJob(t *testing.T) *config.Job {
	t.Helper()
	j, err := config.Parse([]byte(jobJSON))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func anonRequest(t *testing.T) JobRequest {
	return JobRequest{Kind: KindAnonymize, CSV: patientsCSV, Job: testJob(t), IncludeMasked: true}
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, http.Header, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("%s %s: decoding body: %v", method, url, err)
	}
	return resp.StatusCode, resp.Header, payload
}

func submit(t *testing.T, ts *httptest.Server, req JobRequest) (string, map[string]any) {
	t.Helper()
	status, _, payload := doJSON(t, "POST", ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202 (%v)", status, payload)
	}
	id, _ := payload["id"].(string)
	if id == "" {
		t.Fatalf("submit: no job id in %v", payload)
	}
	return id, payload
}

// pollDone polls a job until it leaves the queued/running states.
func pollDone(t *testing.T, ts *httptest.Server, id string) (int, map[string]any) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, _, payload := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		switch payload["state"] {
		case "queued", "running":
			time.Sleep(2 * time.Millisecond)
			continue
		}
		return status, payload
	}
	t.Fatalf("job %s did not finish", id)
	return 0, nil
}

// pollStopReason polls a job until its execution finished and reported
// a stop reason (a cancelled job reads as "cancelled" immediately, but
// its StopReason only appears once the worker disposed of it).
func pollStopReason(t *testing.T, ts *httptest.Server, id string) (int, map[string]any) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, _, payload := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if sr, _ := payload["stop_reason"].(string); sr != "" {
			return status, payload
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reported a stop reason", id)
	return 0, nil
}

func counters(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	_, _, payload := doJSON(t, "GET", ts.URL+"/metrics", nil)
	raw, _ := payload["counters"].(map[string]any)
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		f, _ := v.(float64)
		out[k] = f
	}
	return out
}

func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct{ exit, want int }{
		{ExitOK, 200},
		{ExitViolation, 200},
		{ExitInputError, 400},
		{-1, 500},
		{3, 500},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.exit); got != c.want {
			t.Errorf("HTTPStatus(%d) = %d, want %d", c.exit, got, c.want)
		}
	}
}

func TestCheckVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Satisfied: grouping by Sex alone gives two large diverse groups.
	id, _ := submit(t, ts, JobRequest{
		Kind: KindCheck, CSV: patientsCSV,
		QIs: []string{"Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
	})
	status, payload := pollDone(t, ts, id)
	if status != 200 || payload["state"] != "done" {
		t.Fatalf("satisfied check: status %d state %v (%v)", status, payload["state"], payload)
	}
	if payload["exit_code"].(float64) != ExitOK {
		t.Errorf("satisfied check: exit %v, want 0", payload["exit_code"])
	}
	res := payload["result"].(map[string]any)["check"].(map[string]any)
	if res["satisfied"] != true {
		t.Errorf("satisfied check: result %v", res)
	}

	// Violated: the raw microdata is nowhere near 3-anonymous on all QIs.
	// A violation is a verdict: HTTP 200, exit code 1.
	id, _ = submit(t, ts, JobRequest{
		Kind: KindCheck, CSV: patientsCSV,
		QIs: []string{"Age", "ZipCode", "Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
	})
	status, payload = pollDone(t, ts, id)
	if status != 200 || payload["state"] != "done" {
		t.Fatalf("violated check: status %d state %v", status, payload["state"])
	}
	if payload["exit_code"].(float64) != ExitViolation {
		t.Errorf("violated check: exit %v, want 1", payload["exit_code"])
	}
	res = payload["result"].(map[string]any)["check"].(map[string]any)
	if res["satisfied"] != false {
		t.Errorf("violated check: result %v", res)
	}
}

func TestSubmitInputErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"unknown kind", JobRequest{Kind: "transmogrify", CSV: patientsCSV}},
		{"missing kind", JobRequest{CSV: patientsCSV}},
		{"missing csv", JobRequest{Kind: KindCheck, QIs: []string{"Sex"}}},
		{"check without qi", JobRequest{Kind: KindCheck, CSV: patientsCSV}},
		{"bad k", JobRequest{Kind: KindCheck, CSV: patientsCSV, QIs: []string{"Sex"}, K: 1}},
		{"p without conf", JobRequest{Kind: KindCheck, CSV: patientsCSV, QIs: []string{"Sex"}, K: 3, P: 2}},
		{"negative budget", JobRequest{Kind: KindCheck, CSV: patientsCSV, QIs: []string{"Sex"},
			Budget: BudgetRequest{MaxNodes: -5}}},
		{"anonymize without job", JobRequest{Kind: KindAnonymize, CSV: patientsCSV}},
		{"bad algorithm", func(t *testing.T) JobRequest {
			r := anonRequest(t)
			r.Algorithm = "quantum"
			return r
		}(t)},
		{"malformed csv", func(t *testing.T) JobRequest {
			r := anonRequest(t)
			r.CSV = "Age,Zip\n1,2,3,4\n"
			return r
		}(t)},
		{"attack without external", JobRequest{Kind: KindAttack, CSV: patientsCSV, QIs: []string{"Sex"}}},
	}
	for _, c := range cases {
		status, _, payload := doJSON(t, "POST", ts.URL+"/v1/jobs", c.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (%v)", c.name, status, payload)
		}
		if payload["error"] == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}

	// File-based hierarchy specs must be rejected: the service will not
	// read server-side paths named by a request.
	r := anonRequest(t)
	r.Job.Hierarchies["Sex"] = config.HierarchySpec{Type: "tree", File: "/etc/passwd"}
	status, _, payload := doJSON(t, "POST", ts.URL+"/v1/jobs", r)
	if status != http.StatusBadRequest || !strings.Contains(fmt.Sprint(payload["error"]), "file-based") {
		t.Errorf("file hierarchy: got %d %v, want 400 file-based rejection", status, payload)
	}

	c := counters(t, ts)
	if c["rejected_input"] == 0 {
		t.Errorf("rejected_input counter not bumped: %v", c)
	}
	if c["searches"] != 0 {
		t.Errorf("rejected requests reached the engine: searches = %v", c["searches"])
	}
}

func TestUnknownJobAnd409(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if status, _, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/j-999999", nil); status != 404 {
		t.Errorf("GET unknown job: %d, want 404", status)
	}
	if status, _, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/j-999999", nil); status != 404 {
		t.Errorf("DELETE unknown job: %d, want 404", status)
	}

	id, _ := submit(t, ts, JobRequest{
		Kind: KindCheck, CSV: patientsCSV, QIs: []string{"Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
	})
	pollDone(t, ts, id)
	if status, _, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil); status != 409 {
		t.Errorf("DELETE finished job: %d, want 409", status)
	}
	if status, _, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/nonsense", nil); status != 404 {
		t.Errorf("GET unknown job endpoint: %d, want 404", status)
	}
}

// blockingExecution occupies a worker until the returned channel is
// closed; it never touches the engine.
func blockingExecution(key string) (*execution, chan struct{}) {
	block := make(chan struct{})
	ex := newExecution(Key{Dataset: key}, KindCheck,
		func(ctx context.Context, rec *obs.Recorder) (*JobResult, search.StopReason, error) {
			<-block
			return &JobResult{Check: &CheckResult{Satisfied: true, Group: -1}}, search.StopDone, nil
		})
	return ex, block
}

func waitStarted(t *testing.T, ex *execution) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ex.started.Load() {
		if time.Now().After(deadline) {
			t.Fatal("execution never started")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueSize: 1, Workers: 1})

	// Occupy the single worker, then fill the single queue slot.
	ex1, block := blockingExecution("worker-hog")
	s.queue <- ex1
	waitStarted(t, ex1)
	ex2, block2 := blockingExecution("queue-filler")
	defer close(block2)
	s.queue <- ex2

	before := counters(t, ts)
	status, header, payload := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Kind: KindCheck, CSV: patientsCSV, QIs: []string{"Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
	})
	if status != http.StatusTooManyRequests {
		t.Fatalf("full queue: got %d, want 429 (%v)", status, payload)
	}
	if header.Get("Retry-After") == "" {
		t.Error("full queue: no Retry-After header")
	}
	after := counters(t, ts)
	if after["searches"] != before["searches"] {
		t.Errorf("rejected job touched the engine: searches %v -> %v", before["searches"], after["searches"])
	}
	if after["rejected_queue_full"] != before["rejected_queue_full"]+1 {
		t.Errorf("rejected_queue_full not bumped: %v -> %v", before, after)
	}

	// Unblocking drains the queue; the same request is now accepted.
	close(block)
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _, _ = doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
			Kind: KindCheck, CSV: patientsCSV, QIs: []string{"Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
		})
		if status == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: last status %d", status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSingleFlightAndResultCache(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	const tenants = 8

	ids := make([]string, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(anonRequest(t))
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var payload map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
				t.Error(err)
				return
			}
			ids[i], _ = payload["id"].(string)
		}(i)
	}
	wg.Wait()

	var firstResult string
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		status, payload := pollDone(t, ts, id)
		if status != 200 || payload["state"] != "done" {
			t.Fatalf("job %s: status %d state %v", id, status, payload["state"])
		}
		raw, _ := json.Marshal(payload["result"])
		if firstResult == "" {
			firstResult = string(raw)
		} else if string(raw) != firstResult {
			t.Errorf("job %s: result differs from first tenant's", id)
		}
	}

	c := counters(t, ts)
	if c["searches"] != 1 {
		t.Errorf("identical requests ran %v searches, want exactly 1", c["searches"])
	}
	if c["coalesced"]+c["cache_hits"] != tenants-1 {
		t.Errorf("coalesced(%v) + cache_hits(%v) != %d", c["coalesced"], c["cache_hits"], tenants-1)
	}

	// A later identical submission is a pure cache hit.
	id, sub := submit(t, ts, anonRequest(t))
	if sub["cached"] != true {
		t.Errorf("post-completion submit not served from cache: %v", sub)
	}
	status, payload := pollDone(t, ts, id)
	if status != 200 || payload["state"] != "done" {
		t.Fatalf("cached job: status %d state %v", status, payload["state"])
	}
	if c2 := counters(t, ts); c2["searches"] != 1 {
		t.Errorf("cache hit re-ran the search: %v", c2["searches"])
	}
}

func TestAnonymizeResultVerifies(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id, _ := submit(t, ts, anonRequest(t))
	status, payload := pollDone(t, ts, id)
	if status != 200 || payload["state"] != "done" {
		t.Fatalf("anonymize: status %d state %v (%v)", status, payload["state"], payload["error"])
	}
	res := payload["result"].(map[string]any)["anonymize"].(map[string]any)
	if res["found"] != true {
		t.Fatalf("anonymize: not found: %v", res)
	}
	masked, err := table.ReadCSV(strings.NewReader(res["masked_csv"].(string)), nil)
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := core.Check(masked, []string{"Age", "ZipCode", "Sex"}, []string{"Illness"}, 2, 3)
	if err != nil || !verdict.Satisfied {
		t.Errorf("released table not 2-sensitive 3-anonymous: %v %v", verdict, err)
	}
	if payload["stop_reason"] != "done" {
		t.Errorf("stop_reason %v, want done", payload["stop_reason"])
	}
	if payload["report"] == nil {
		t.Error("no report embedded in the finished job")
	}
}

func TestFrontierAndAttackKinds(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	req := anonRequest(t)
	req.Kind = KindFrontier
	req.IncludeMasked = false
	id, _ := submit(t, ts, req)
	status, payload := pollDone(t, ts, id)
	if status != 200 || payload["state"] != "done" {
		t.Fatalf("frontier: status %d state %v (%v)", status, payload["state"], payload["error"])
	}
	members := payload["result"].(map[string]any)["frontier"].(map[string]any)["members"].([]any)
	if len(members) == 0 {
		t.Error("frontier: no members")
	}

	external := "Name,Age,ZipCode,Sex\nAlice,25,41076,M\nBob,61,43103,F\n"
	id, _ = submit(t, ts, JobRequest{
		Kind: KindAttack, CSV: patientsCSV, ExternalCSV: external,
		QIs: []string{"Age", "ZipCode", "Sex"}, Conf: []string{"Illness"},
	})
	status, payload = pollDone(t, ts, id)
	if status != 200 || payload["state"] != "done" {
		t.Fatalf("attack: status %d state %v (%v)", status, payload["state"], payload["error"])
	}
	atk := payload["result"].(map[string]any)["attack"].(map[string]any)
	if atk["individuals"].(float64) != 2 {
		t.Errorf("attack: individuals %v, want 2", atk["individuals"])
	}
	// The raw microdata links both intruder records uniquely.
	if atk["uniquely_identified"].(float64) != 2 {
		t.Errorf("attack on raw data: uniquely_identified %v, want 2", atk["uniquely_identified"])
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueSize: 4, Workers: 1})
	ex, block := blockingExecution("hog")
	s.queue <- ex
	waitStarted(t, ex)

	id, _ := submit(t, ts, anonRequest(t))
	status, _, payload := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if status != 200 || payload["state"] != "cancelled" {
		t.Fatalf("cancel queued: status %d state %v", status, payload["state"])
	}
	if status, _, _ = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil); status != 409 {
		t.Errorf("double cancel: %d, want 409", status)
	}
	before := counters(t, ts)
	close(block)
	// The worker must skip the cancelled execution without running it.
	status, payload = pollStopReason(t, ts, id)
	if status != 200 || payload["state"] != "cancelled" {
		t.Fatalf("cancelled job: status %d state %v", status, payload["state"])
	}
	if payload["stop_reason"] != search.StopCancelled.String() {
		t.Errorf("stop_reason %v, want %v", payload["stop_reason"], search.StopCancelled.String())
	}
	after := counters(t, ts)
	if after["searches"] != before["searches"] {
		t.Errorf("cancelled queued job touched the engine: %v -> %v", before["searches"], after["searches"])
	}
}

func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	// A run that holds until its context is cancelled — a stand-in for a
	// long search; the engine's own context plumbing is covered by the
	// search package's cancellation tests.
	ex := newExecution(Key{Dataset: "slow"}, KindAnonymize,
		func(ctx context.Context, rec *obs.Recorder) (*JobResult, search.StopReason, error) {
			<-ctx.Done()
			return nil, search.StopCancelled, nil
		})
	s.mu.Lock()
	ex.refs.Add(1)
	s.execs[ex.key] = ex
	s.nextID++
	j := &job{id: fmt.Sprintf("j-%06d", s.nextID), kind: ex.kind, key: ex.key, exec: ex}
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.queue <- ex
	waitStarted(t, ex)

	status, _, payload := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+j.id, nil)
	if status != 200 {
		t.Fatalf("cancel running: status %d (%v)", status, payload)
	}
	status, payload = pollStopReason(t, ts, j.id)
	if status != 200 || payload["state"] != "cancelled" {
		t.Fatalf("cancelled running job: status %d state %v", status, payload["state"])
	}
	if payload["stop_reason"] != search.StopCancelled.String() {
		t.Errorf("stop_reason %v, want cancelled", payload["stop_reason"])
	}
}

func TestCoalescedFollowerKeepsSearchAlive(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	gate := make(chan struct{})
	ex := newExecution(Key{Dataset: "shared"}, KindCheck,
		func(ctx context.Context, rec *obs.Recorder) (*JobResult, search.StopReason, error) {
			<-gate
			if ctx.Err() != nil {
				return nil, search.StopCancelled, nil
			}
			return &JobResult{Check: &CheckResult{Satisfied: true, Group: -1}}, search.StopDone, nil
		})
	s.mu.Lock()
	ex.refs.Add(2) // leader + follower
	s.execs[ex.key] = ex
	leader := &job{id: "j-900001", kind: ex.kind, key: ex.key, exec: ex, coalesced: false}
	follower := &job{id: "j-900002", kind: ex.kind, key: ex.key, exec: ex, coalesced: true}
	s.jobs[leader.id] = leader
	s.jobs[follower.id] = follower
	s.mu.Unlock()
	s.queue <- ex
	waitStarted(t, ex)

	// Cancelling the leader must NOT cancel the shared execution: the
	// follower still wants the result.
	if status, _, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+leader.id, nil); status != 200 {
		t.Fatal("leader cancel failed")
	}
	if ex.ctx.Err() != nil {
		t.Fatal("leader cancel killed the shared execution")
	}
	close(gate)
	status, payload := pollDone(t, ts, follower.id)
	if status != 200 || payload["state"] != "done" {
		t.Fatalf("follower: status %d state %v", status, payload["state"])
	}
	// The leader reads as cancelled even though the execution completed.
	_, payload = pollDone(t, ts, leader.id)
	if payload["state"] != "cancelled" {
		t.Errorf("leader state %v, want cancelled", payload["state"])
	}
}

func TestDrainingReturns503(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	status, header, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Kind: KindCheck, CSV: patientsCSV, QIs: []string{"Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", status)
	}
	if header.Get("Retry-After") == "" {
		t.Error("draining submit: no Retry-After header")
	}
	_, _, payload := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if payload["state"] != "draining" {
		t.Errorf("healthz state %v, want draining", payload["state"])
	}
}

func TestPerJobObsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id, _ := submit(t, ts, anonRequest(t))
	pollDone(t, ts, id)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	var rep obs.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("per-job /metrics is not a report: %v", err)
	}

	// The scrape and the report embedded in the status payload are the
	// same document byte for byte (after re-indenting the embedded one,
	// which sits at a deeper nesting level).
	gr, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Report json.RawMessage `json:"report"`
	}
	if err := json.NewDecoder(gr.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	var norm bytes.Buffer
	if err := json.Indent(&norm, status.Report, "", "  "); err != nil {
		t.Fatal(err)
	}
	norm.WriteByte('\n')
	if !bytes.Equal(norm.Bytes(), buf.Bytes()) {
		t.Errorf("embedded report and /metrics scrape differ:\n--- embedded ---\n%s\n--- scrape ---\n%s",
			norm.String(), buf.String())
	}

	for _, ep := range []string{"/progress", "/healthz"} {
		if status, _, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+ep, nil); status != 200 {
			t.Errorf("per-job %s: %d, want 200", ep, status)
		}
	}
}

func TestSharedDatasetCacheReuse(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id, _ := submit(t, ts, anonRequest(t))
	pollDone(t, ts, id)

	// A different config over the same (dataset, hierarchy) pair reuses
	// the shared entry instead of re-parsing.
	req := anonRequest(t)
	req.Job.K = 2
	id2, sub := submit(t, ts, req)
	if sub["cached"] == true || sub["coalesced"] == true {
		t.Fatalf("different config unexpectedly deduped: %v", sub)
	}
	pollDone(t, ts, id2)
	s.mu.Lock()
	nd := len(s.datasets)
	s.mu.Unlock()
	if nd != 1 {
		t.Errorf("dataset cache entries = %d, want 1 shared entry", nd)
	}
	if c := counters(t, ts); c["searches"] != 2 {
		t.Errorf("searches = %v, want 2", c["searches"])
	}
}

func TestBudgetClamp(t *testing.T) {
	cap := search.Budget{Deadline: 10 * time.Second, MaxNodes: 100}
	cases := []struct {
		req  BudgetRequest
		want search.Budget
	}{
		{BudgetRequest{}, search.Budget{Deadline: 10 * time.Second, MaxNodes: 100}},
		{BudgetRequest{TimeoutMS: 2000}, search.Budget{Deadline: 2 * time.Second, MaxNodes: 100}},
		{BudgetRequest{TimeoutMS: 60000, MaxNodes: 5}, search.Budget{Deadline: 10 * time.Second, MaxNodes: 5}},
		{BudgetRequest{MaxNodes: 1000, MaxCacheBytes: 1 << 20},
			search.Budget{Deadline: 10 * time.Second, MaxNodes: 100, MaxCacheBytes: 1 << 20}},
	}
	for i, c := range cases {
		if got := clampBudget(c.req, cap); got != c.want {
			t.Errorf("case %d: clampBudget = %+v, want %+v", i, got, c.want)
		}
	}
}

func TestKeyHashing(t *testing.T) {
	r1 := anonRequest(t)
	r2 := anonRequest(t)
	eff := search.Budget{Deadline: time.Second}
	k1, err := r1.key(eff)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := r2.key(eff)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical requests hash differently:\n%+v\n%+v", k1, k2)
	}

	// Worker count must NOT split the key (results are worker-invariant).
	r2.Workers = 7
	if k2, _ = r2.key(eff); k1 != k2 {
		t.Error("worker count changed the key")
	}

	// Algorithm, budget and data all must split it.
	r2.Algorithm = "exhaustive"
	if k2, _ = r2.key(eff); k1.Config == k2.Config {
		t.Error("algorithm did not change the config hash")
	}
	r2 = anonRequest(t)
	if k2, _ = r2.key(search.Budget{Deadline: 2 * time.Second}); k1.Config == k2.Config {
		t.Error("budget did not change the config hash")
	}
	r2 = anonRequest(t)
	r2.CSV += "25,41076,M,Flu\n"
	if k2, _ = r2.key(eff); k1.Dataset == k2.Dataset {
		t.Error("csv bytes did not change the dataset fingerprint")
	}
	r2 = anonRequest(t)
	r2.Job.K = 5
	if k2, _ = r2.key(eff); k1.Config == k2.Config {
		t.Error("k did not change the config hash")
	}
}
