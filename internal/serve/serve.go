package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"psk/internal/config"
	"psk/internal/generalize"
	"psk/internal/obs"
	"psk/internal/search"
	"psk/internal/table"
)

// Options parameterize a Server. The zero value is usable: New fills
// every unset field with the default documented on it.
type Options struct {
	// QueueSize bounds the job queue; a full queue rejects submissions
	// with 429 + Retry-After. Default 64.
	QueueSize int
	// Workers is the number of queue workers draining jobs concurrently.
	// Default 2.
	Workers int
	// MaxSearchWorkers caps the per-search engine worker pool a request
	// may ask for (requests asking for more, or for 0, get this many).
	// Default 1 — the serial, deterministic evaluation path.
	MaxSearchWorkers int
	// MaxBudget caps per-request budgets field by field; zero fields are
	// uncapped. Default: 30s deadline cap, nodes and memory uncapped.
	MaxBudget search.Budget
	// ResultCacheEntries bounds the completed-execution cache (LRU).
	// Default 128.
	ResultCacheEntries int
	// DatasetCacheEntries bounds the shared dataset cache (LRU over
	// parsed tables + generalized-column caches). Default 8.
	DatasetCacheEntries int
	// RetryAfter is the hint returned with 429/503. Default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds a request body. Default 64 MiB.
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxSearchWorkers <= 0 {
		o.MaxSearchWorkers = 1
	}
	if o.MaxSearchWorkers > runtime.GOMAXPROCS(0) {
		o.MaxSearchWorkers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBudget == (search.Budget{}) {
		o.MaxBudget = search.Budget{Deadline: 30 * time.Second}
	}
	if o.ResultCacheEntries <= 0 {
		o.ResultCacheEntries = 128
	}
	if o.DatasetCacheEntries <= 0 {
		o.DatasetCacheEntries = 8
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	return o
}

// stats are the service-level counters /metrics exports. All atomic —
// handlers and workers bump them without the server lock.
type stats struct {
	submitted         atomic.Int64
	accepted          atomic.Int64
	coalesced         atomic.Int64
	cacheHits         atomic.Int64
	searches          atomic.Int64
	rejectedInput     atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedDraining  atomic.Int64
	cancelled         atomic.Int64
}

// ServiceMetrics is the GET /metrics payload: queue occupancy, job
// states and the service counters. The single-flight and cache
// behaviour the tests pin (one underlying search for N identical
// submissions) is read off Counters.
type ServiceMetrics struct {
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	Jobs     map[string]int   `json:"jobs"`
	Counters map[string]int64 `json:"counters"`
	Caches   struct {
		Results  int `json:"results"`
		Datasets int `json:"datasets"`
	} `json:"caches"`
}

// job is one submitted request: a public id bound to the (possibly
// shared) execution that computes its answer.
type job struct {
	id        string
	kind      string
	key       Key
	exec      *execution
	coalesced bool
	cached    bool
	cancelled atomic.Bool
}

// state derives the job's lifecycle state for status payloads.
func (j *job) state() string {
	if j.cancelled.Load() {
		return "cancelled"
	}
	ex := j.exec
	if !ex.finished() {
		if ex.started.Load() {
			return "running"
		}
		return "queued"
	}
	if ex.err != nil {
		return "failed"
	}
	if ex.stop == search.StopCancelled {
		return "cancelled"
	}
	return "done"
}

// Server is the anonymization service. Build one with New, mount
// Handler on an http.Server, Close to drain.
type Server struct {
	opt   Options
	mux   *http.ServeMux
	queue chan *execution
	wg    sync.WaitGroup
	stats stats

	mu       sync.Mutex
	draining bool
	nextID   int64
	jobs     map[string]*job
	// execs holds in-flight and cached-completed executions by content
	// key; resultLRU orders the completed ones for eviction.
	execs     map[Key]*execution
	resultLRU []Key
	// datasets is the shared (dataset, hierarchy) cache; datasetLRU
	// orders it for eviction.
	datasets   map[[2]string]*sharedData
	datasetLRU [][2]string
}

// New builds a Server and starts its queue workers.
func New(opt Options) *Server {
	s := &Server{
		opt:      opt.withDefaults(),
		jobs:     make(map[string]*job),
		execs:    make(map[Key]*execution),
		datasets: make(map[[2]string]*sharedData),
	}
	s.queue = make(chan *execution, s.opt.QueueSize)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/{sub...}", s.handleJobObs)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /progress", s.handleProgress)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for i := 0; i < s.opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the service: new submissions get 503, queued executions
// are cancelled without touching the engine, running searches are
// interrupted through their contexts, and Close returns once every
// worker has finished. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	close(s.queue)
	for _, ex := range s.execs {
		if !ex.finished() {
			ex.cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) worker() {
	defer s.wg.Done()
	for ex := range s.queue {
		s.runExecution(ex)
	}
}

func (s *Server) runExecution(ex *execution) {
	if ex.ctx.Err() != nil {
		// Every attached job was cancelled (or the server drained) while
		// the execution sat in the queue: it never touches the engine.
		s.finishExecution(ex, nil, search.StopCancelled, nil)
		return
	}
	ex.started.Store(true)
	s.stats.searches.Add(1)
	res, stop, err := ex.run(ex.ctx, ex.rec)
	if err == nil && ex.ctx.Err() != nil && stop == search.StopDone {
		// A cancel that landed after the engine finished its last node
		// still reports as cancelled — the client asked for no result.
		stop = search.StopCancelled
	}
	s.finishExecution(ex, res, stop, err)
}

func (s *Server) finishExecution(ex *execution, res *JobResult, stop search.StopReason, err error) {
	ex.finish(res, stop, err)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ex.cacheable() {
		// Errors and partial results are never replayed; forget the
		// execution so an identical future request runs fresh. (Jobs
		// keep their direct pointer — status reads are unaffected.)
		if s.execs[ex.key] == ex {
			delete(s.execs, ex.key)
		}
		return
	}
	s.resultLRU = append(s.resultLRU, ex.key)
	for len(s.resultLRU) > s.opt.ResultCacheEntries {
		victim := s.resultLRU[0]
		s.resultLRU = s.resultLRU[1:]
		if old := s.execs[victim]; old != nil && old.finished() {
			delete(s.execs, victim)
		}
	}
}

// sharedDataset resolves (or builds and caches) the shared entry for a
// search request: parsed typed table, hierarchies, masker and the
// generalized-column cache concurrent searches share. The parse runs
// outside the server lock; a submit race builds the entry twice and the
// second insert wins — wasted work, never wrong results.
func (s *Server) sharedDataset(key Key, rawCSV string, job *config.Job) (*sharedData, error) {
	dk := [2]string{key.Dataset, key.Hierarchy}
	s.mu.Lock()
	if sd := s.datasets[dk]; sd != nil {
		s.touchDataset(dk)
		s.mu.Unlock()
		return sd, nil
	}
	s.mu.Unlock()

	header, err := csvHeader(rawCSV)
	if err != nil {
		return nil, inputError{err}
	}
	schema, err := job.Schema(header)
	if err != nil {
		return nil, inputError{err}
	}
	tbl, err := table.ReadCSV(strings.NewReader(rawCSV), &schema)
	if err != nil {
		return nil, inputError{err}
	}
	hiers, err := job.BuildHierarchies()
	if err != nil {
		return nil, inputError{err}
	}
	masker, err := generalize.NewMasker(job.QuasiIdentifiers, hiers)
	if err != nil {
		return nil, inputError{err}
	}
	sd := &sharedData{tbl: tbl, hiers: hiers, masker: masker, cache: masker.NewCache(tbl)}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prior := s.datasets[dk]; prior != nil {
		return prior, nil
	}
	s.datasets[dk] = sd
	s.datasetLRU = append(s.datasetLRU, dk)
	for len(s.datasetLRU) > s.opt.DatasetCacheEntries {
		victim := s.datasetLRU[0]
		s.datasetLRU = s.datasetLRU[1:]
		delete(s.datasets, victim)
	}
	return sd, nil
}

func (s *Server) touchDataset(dk [2]string) {
	for i, k := range s.datasetLRU {
		if k == dk {
			s.datasetLRU = append(append(s.datasetLRU[:i:i], s.datasetLRU[i+1:]...), dk)
			return
		}
	}
}

// --- HTTP handlers ---

// submitResponse is the 202 body of POST /v1/jobs.
type submitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Location string `json:"location"`
	// Coalesced: the job attached to an identical in-flight execution;
	// Cached: to an already-completed one. Either way no new search runs.
	Coalesced bool `json:"coalesced"`
	Cached    bool `json:"cached"`
	Key       Key  `json:"key"`
}

// statusResponse is the GET /v1/jobs/{id} body.
type statusResponse struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced"`
	Cached    bool   `json:"cached"`
	Key       Key    `json:"key"`
	// ExitCode and StopReason are set once the job finished.
	ExitCode   *int       `json:"exit_code,omitempty"`
	StopReason string     `json:"stop_reason,omitempty"`
	Error      string     `json:"error,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
	// Report is the job's final obs report — the same document
	// GET /v1/jobs/{id}/metrics serves byte for byte.
	Report *obs.Report `json:"report,omitempty"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]string{"error": msg}) //nolint:errcheck // best-effort error body
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.submitted.Add(1)
	var req JobRequest
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.stats.rejectedInput.Add(1)
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	key, run, _, err := s.prepare(&req)
	if err != nil {
		s.stats.rejectedInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.rejectedDraining.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.opt.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	j := &job{kind: req.Kind, key: key}
	if ex := s.execs[key]; ex != nil {
		// Single-flight: an identical computation is in flight or cached.
		j.exec = ex
		if ex.finished() {
			j.cached = true
			s.stats.cacheHits.Add(1)
			s.touchResult(key)
		} else {
			j.coalesced = true
			ex.refs.Add(1)
			s.stats.coalesced.Add(1)
		}
	} else {
		ex := newExecution(key, req.Kind, run)
		select {
		case s.queue <- ex:
			ex.refs.Add(1)
			j.exec = ex
			s.execs[key] = ex
		default:
			s.mu.Unlock()
			ex.cancel()
			s.stats.rejectedQueueFull.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.opt.RetryAfter))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("job queue full (%d pending); retry later", s.opt.QueueSize))
			return
		}
	}
	s.nextID++
	j.id = fmt.Sprintf("j-%06d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()

	s.stats.accepted.Add(1)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	obs.WriteJSON(noStatusWriter{w}, submitResponse{
		ID: j.id, State: j.state(), Location: "/v1/jobs/" + j.id,
		Coalesced: j.coalesced, Cached: j.cached, Key: key,
	})
}

// touchResult moves a cached key to the LRU back. Caller holds s.mu.
func (s *Server) touchResult(key Key) {
	for i, k := range s.resultLRU {
		if k == key {
			s.resultLRU = append(append(s.resultLRU[:i:i], s.resultLRU[i+1:]...), key)
			return
		}
	}
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	resp := statusResponse{
		ID: j.id, Kind: j.kind, State: j.state(),
		Coalesced: j.coalesced, Cached: j.cached, Key: j.key,
	}
	status := http.StatusOK
	ex := j.exec
	if ex.finished() {
		resp.StopReason = ex.stop.String()
		if !j.cancelled.Load() {
			exit := ex.exit
			resp.ExitCode = &exit
			resp.Result = ex.result
			resp.Report = ex.report
			if ex.err != nil {
				resp.Error = ex.err.Error()
			}
			status = HTTPStatus(ex.exit)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	obs.WriteJSON(noStatusWriter{w}, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	ex := j.exec
	if ex.finished() || j.cached {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	if j.cancelled.Swap(true) {
		writeError(w, http.StatusConflict, "job already cancelled")
		return
	}
	s.stats.cancelled.Add(1)
	if ex.refs.Add(-1) == 0 {
		// Last attached job gone: stop the underlying search. The engine
		// returns its best-so-far partial tagged StopCancelled.
		ex.cancel()
	}
	w.WriteHeader(http.StatusOK)
	obs.WriteJSON(noStatusWriter{w}, map[string]string{"id": j.id, "state": j.state()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	type item struct {
		ID    string `json:"id"`
		Kind  string `json:"kind"`
		State string `json:"state"`
	}
	items := make([]item, 0, len(s.jobs))
	for _, j := range s.jobs {
		items = append(items, item{ID: j.id, Kind: j.kind, State: j.state()})
	}
	s.mu.Unlock()
	// Job ids are zero-padded sequence numbers; lexicographic order is
	// submission order.
	for i := 1; i < len(items); i++ {
		for k := i; k > 0 && items[k].ID < items[k-1].ID; k-- {
			items[k], items[k-1] = items[k-1], items[k]
		}
	}
	obs.WriteJSON(w, map[string]any{"jobs": items})
}

// handleJobObs mounts the per-job observatory: /v1/jobs/{id}/metrics,
// /progress, /healthz and /debug/pprof/* are the exact obs.Server
// endpoints, served by the job's execution view. Before the job
// finishes, /metrics snapshots the live recorder; after, it serves the
// frozen final report.
func (s *Server) handleJobObs(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	sub := r.PathValue("sub")
	switch {
	case sub == "metrics", sub == "progress", sub == "healthz",
		strings.HasPrefix(sub, "debug/pprof"):
	default:
		writeError(w, http.StatusNotFound, "no such endpoint")
		return
	}
	r2 := new(http.Request)
	*r2 = *r
	r2.URL = new(url.URL)
	*r2.URL = *r.URL
	r2.URL.Path = "/" + sub
	j.exec.view.ServeHTTP(w, r2)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var m ServiceMetrics
	m.Queue.Depth = len(s.queue)
	m.Queue.Capacity = s.opt.QueueSize
	m.Jobs = map[string]int{"queued": 0, "running": 0, "done": 0, "failed": 0, "cancelled": 0}
	s.mu.Lock()
	for _, j := range s.jobs {
		m.Jobs[j.state()]++
	}
	m.Caches.Results = len(s.resultLRU)
	m.Caches.Datasets = len(s.datasets)
	s.mu.Unlock()
	m.Counters = map[string]int64{
		"submitted":           s.stats.submitted.Load(),
		"accepted":            s.stats.accepted.Load(),
		"coalesced":           s.stats.coalesced.Load(),
		"cache_hits":          s.stats.cacheHits.Load(),
		"searches":            s.stats.searches.Load(),
		"cancelled":           s.stats.cancelled.Load(),
		"rejected_input":      s.stats.rejectedInput.Load(),
		"rejected_queue_full": s.stats.rejectedQueueFull.Load(),
		"rejected_draining":   s.stats.rejectedDraining.Load(),
	}
	obs.WriteJSON(w, m)
}

// progressPayload is the GET /progress body: per-running-job engine
// gauges, the service-level twin of obs.Server's /progress.
type progressPayload struct {
	State string `json:"state"`
	Jobs  []struct {
		ID       string       `json:"id"`
		Kind     string       `json:"kind"`
		Progress obs.Progress `json:"progress"`
	} `json:"jobs"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	p := progressPayload{State: s.state()}
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.state() != "running" {
			continue
		}
		p.Jobs = append(p.Jobs, struct {
			ID       string       `json:"id"`
			Kind     string       `json:"kind"`
			Progress obs.Progress `json:"progress"`
		}{j.id, j.kind, j.exec.rec.Progress()})
	}
	s.mu.Unlock()
	obs.WriteJSON(w, p)
}

func (s *Server) state() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "draining"
	}
	return "serving"
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	obs.WriteJSON(w, map[string]string{"status": "ok", "state": s.state()})
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// noStatusWriter suppresses duplicate WriteHeader calls from helpers
// that write after the handler already committed a status code.
type noStatusWriter struct{ http.ResponseWriter }

func (noStatusWriter) WriteHeader(int) {}
