// Package serve implements anonymization-as-a-service: a stdlib-only
// net/http front door over the search engine. Check / anonymize /
// frontier / attack run as async jobs — POST /v1/jobs returns a job id,
// GET polls status and result, DELETE cancels through the engine's
// already-threaded context. The server adds what a multi-tenant
// deployment needs on top of the library: a bounded job queue with
// backpressure (429 + Retry-After), per-request budgets clamped by
// server-side caps, a result cache keyed by (dataset fingerprint,
// hierarchy hash, config hash) with single-flight dedup of identical
// in-flight requests, a shared generalize.Cache across concurrent
// searches over the same dataset, and per-job obs endpoints.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"psk/internal/config"
	"psk/internal/core"
	"psk/internal/search"
)

// Job kinds.
const (
	KindCheck     = "check"
	KindAnonymize = "anonymize"
	KindFrontier  = "frontier"
	KindAttack    = "attack"
)

// Exit codes mirror the CLI convention (cli.ExitOK / ExitViolation /
// ExitInputError); serve redeclares them because internal/cli imports
// this package and Go forbids the cycle. TestExitCodeAgreement in
// internal/cli pins the two sets against each other.
const (
	// ExitOK: the job ran and the verdict is positive (property holds,
	// generalization found, attack simulated).
	ExitOK = 0
	// ExitViolation: the job ran and the verdict is negative (property
	// violated, no satisfying generalization). A verdict, not a failure.
	ExitViolation = 1
	// ExitInputError: the request never produced a verdict (malformed
	// CSV, invalid parameters, unbuildable hierarchy).
	ExitInputError = 2
)

// HTTPStatus maps a job exit code onto the HTTP status of its result:
// both verdict outcomes are 200 (the verdict is the body — a violation
// is an answer, not a server failure), input errors are 400. This is
// the CLI exit-code convention lifted onto HTTP.
func HTTPStatus(exit int) int {
	switch exit {
	case ExitOK, ExitViolation:
		return 200
	case ExitInputError:
		return 400
	default:
		return 500
	}
}

// BudgetRequest is a per-request search budget. Every field is clamped
// by the server's Options.MaxBudget cap: a zero field inherits the cap,
// a positive one is reduced to it.
type BudgetRequest struct {
	// TimeoutMS bounds the search wall clock in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxNodes bounds the number of lattice nodes evaluated.
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// MaxCacheBytes bounds the generalized-column cache. A job with a
	// private memory budget opts out of the shared dataset cache (the
	// shared cache's bytes are not attributable to one tenant).
	MaxCacheBytes int64 `json:"max_cache_bytes,omitempty"`
}

// JobRequest is the POST /v1/jobs body. CSV payloads ride inline so a
// request is self-contained and content-addressable; the dataset
// fingerprint is the SHA-256 of the raw CSV bytes.
type JobRequest struct {
	// Kind selects the operation: check, anonymize, frontier or attack.
	Kind string `json:"kind"`
	// CSV is the input microdata (masked microdata for attack), header
	// row first.
	CSV string `json:"csv"`

	// Job is the anonymization job description (anonymize / frontier):
	// QIs, confidential attributes, k, p, suppression budget, types and
	// hierarchies — the same JSON pskanon's -job flag loads.
	Job *config.Job `json:"job,omitempty"`
	// Algorithm selects the search strategy (anonymize / frontier):
	// samarati (default), bottomup or exhaustive.
	Algorithm string `json:"algorithm,omitempty"`
	// IncludeMasked asks the anonymize result to carry the masked CSV.
	IncludeMasked bool `json:"include_masked,omitempty"`

	// QIs / Conf / K / P parameterize check and attack (check mirrors
	// pskcheck's flags; anonymize takes them from Job instead).
	QIs  []string `json:"qi,omitempty"`
	Conf []string `json:"conf,omitempty"`
	K    int      `json:"k,omitempty"`
	P    int      `json:"p,omitempty"`

	// LDiv / TClose / Alpha extend the target policy exactly like the
	// CLI's -ldiv/-tclose/-alpha flags (TClose is a pointer because 0 is
	// a meaningful threshold).
	LDiv   int      `json:"ldiv,omitempty"`
	TClose *float64 `json:"tclose,omitempty"`
	Alpha  float64  `json:"alpha,omitempty"`

	// ExternalCSV and ID parameterize attack: the intruder's identified
	// table and its identifier column.
	ExternalCSV string `json:"external_csv,omitempty"`
	ID          string `json:"id,omitempty"`

	// Workers sizes the per-search engine worker pool (results are
	// identical at every worker count, so Workers is excluded from the
	// cache key). Clamped to the server's option.
	Workers int `json:"workers,omitempty"`
	// Budget bounds the search; see BudgetRequest.
	Budget BudgetRequest `json:"budget,omitempty"`
}

// Key is the content address of a job: three hex SHA-256 digests. Two
// requests with equal Keys are the same computation — the result cache
// and single-flight dedup both key on it.
type Key struct {
	// Dataset fingerprints the raw CSV bytes (plus the external CSV for
	// attack jobs).
	Dataset string `json:"dataset"`
	// Hierarchy hashes the data-preparation inputs: column types,
	// hierarchy specs and the QI list. It doubles as the shared
	// generalize.Cache key component — equal (Dataset, Hierarchy) means
	// the parsed table, hierarchies, masker and generalized columns are
	// all reusable.
	Hierarchy string `json:"hierarchy"`
	// Config hashes everything else that selects the result: kind,
	// parameters, policy extensions, algorithm and the effective
	// (post-clamp) budget.
	Config string `json:"config"`
}

func sha(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		var n [8]byte
		for i, l := 0, len(p); i < 8; i++ {
			n[i] = byte(l >> (8 * i))
		}
		h.Write(n[:]) // length-prefix so part boundaries can't collide
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashJSON hashes the canonical JSON of v (struct field order is fixed;
// map keys marshal sorted), so equal values hash equal.
func hashJSON(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return sha(string(raw)), nil
}

// configKey is the normalized form hashed into Key.Config. Workers is
// deliberately absent: the engine guarantees identical results at every
// worker count, so worker-count-only variations share cache entries.
type configKey struct {
	Kind          string        `json:"kind"`
	QIs           []string      `json:"qis"`
	Conf          []string      `json:"conf"`
	K             int           `json:"k"`
	P             int           `json:"p"`
	MaxSuppress   int           `json:"maxSuppress"`
	LDiv          int           `json:"ldiv"`
	TClose        *float64      `json:"tclose"`
	Alpha         float64       `json:"alpha"`
	Algorithm     string        `json:"algorithm"`
	IncludeMasked bool          `json:"includeMasked"`
	ID            string        `json:"id"`
	Budget        search.Budget `json:"budget"`
}

// prepKey is the normalized form hashed into Key.Hierarchy.
type prepKey struct {
	QIs         []string                        `json:"qis"`
	Types       map[string]string               `json:"types"`
	Hierarchies map[string]config.HierarchySpec `json:"hierarchies"`
}

// inputError marks a request defect: the job never produced a verdict.
// It maps to ExitInputError / HTTP 400, exactly like cli.InputError
// maps to exit 2.
type inputError struct{ err error }

func (e inputError) Error() string { return e.err.Error() }
func (e inputError) Unwrap() error { return e.err }

func inputErrf(format string, a ...any) error {
	return inputError{fmt.Errorf(format, a...)}
}

// isInputError reports whether err (or anything it wraps) marks an
// input defect.
func isInputError(err error) bool {
	for err != nil {
		if _, ok := err.(inputError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// validate checks the request shape common to all kinds and normalizes
// defaults. Every failure is an input error (400).
func (r *JobRequest) validate() error {
	switch r.Kind {
	case KindCheck, KindAnonymize, KindFrontier, KindAttack:
	case "":
		return inputErrf("missing job kind (check, anonymize, frontier, attack)")
	default:
		return inputErrf("unknown job kind %q", r.Kind)
	}
	if strings.TrimSpace(r.CSV) == "" {
		return inputErrf("missing csv payload")
	}
	if r.Budget.TimeoutMS < 0 || r.Budget.MaxNodes < 0 || r.Budget.MaxCacheBytes < 0 {
		return inputErrf("negative budget limit %+v", r.Budget)
	}
	switch r.Kind {
	case KindCheck:
		if len(r.QIs) == 0 {
			return inputErrf("check requires qi")
		}
		if r.K == 0 {
			r.K = 2
		}
		if r.P == 0 {
			r.P = 1
		}
		if r.K < 2 {
			return inputErrf("k must be >= 2, got %d", r.K)
		}
		if r.P < 1 || r.P > r.K {
			return inputErrf("p must satisfy 1 <= p <= k, got p=%d k=%d", r.P, r.K)
		}
		if r.P >= 2 && len(r.Conf) == 0 {
			return inputErrf("p >= 2 requires confidential attributes")
		}
	case KindAnonymize, KindFrontier:
		if r.Job == nil {
			return inputErrf("%s requires a job description", r.Kind)
		}
		switch r.Algorithm {
		case "":
			r.Algorithm = "samarati"
		case "samarati", "bottomup", "exhaustive":
		default:
			return inputErrf("unknown algorithm %q", r.Algorithm)
		}
	case KindAttack:
		if strings.TrimSpace(r.ExternalCSV) == "" {
			return inputErrf("attack requires external_csv")
		}
		if len(r.QIs) == 0 {
			return inputErrf("attack requires qi")
		}
		if r.ID == "" {
			r.ID = "Name"
		}
	}
	if (r.LDiv > 0 || r.TClose != nil || r.Alpha > 0) && r.Kind != KindAttack {
		confs := r.Conf
		if r.Kind != KindCheck {
			confs = r.Job.Confidential
		}
		if len(confs) == 0 {
			return inputErrf("ldiv/tclose/alpha require confidential attributes")
		}
	}
	return nil
}

// key computes the job's content address with the effective budget
// already folded in.
func (r *JobRequest) key(eff search.Budget) (Key, error) {
	ck := configKey{
		Kind: r.Kind, QIs: r.QIs, Conf: r.Conf, K: r.K, P: r.P,
		LDiv: r.LDiv, TClose: r.TClose, Alpha: r.Alpha,
		Algorithm: r.Algorithm, IncludeMasked: r.IncludeMasked,
		ID: r.ID, Budget: eff,
	}
	pk := prepKey{}
	if r.Job != nil {
		ck.QIs = r.Job.QuasiIdentifiers
		ck.Conf = r.Job.Confidential
		ck.K = r.Job.K
		ck.P = r.Job.P
		ck.MaxSuppress = r.Job.MaxSuppress
		pk = prepKey{QIs: r.Job.QuasiIdentifiers, Types: r.Job.Types, Hierarchies: r.Job.Hierarchies}
	}
	cfgHash, err := hashJSON(ck)
	if err != nil {
		return Key{}, err
	}
	prepHash, err := hashJSON(pk)
	if err != nil {
		return Key{}, err
	}
	ds := sha(r.CSV)
	if r.Kind == KindAttack {
		ds = sha(r.CSV, r.ExternalCSV)
	}
	return Key{Dataset: ds, Hierarchy: prepHash, Config: cfgHash}, nil
}

// clampBudget applies the server cap to a requested budget, field by
// field: a zero request inherits the cap, a positive one is reduced to
// it. A zero cap leaves the request unclamped.
func clampBudget(req BudgetRequest, cap search.Budget) search.Budget {
	eff := search.Budget{
		Deadline:      time.Duration(req.TimeoutMS) * time.Millisecond,
		MaxNodes:      req.MaxNodes,
		MaxCacheBytes: req.MaxCacheBytes,
	}
	if cap.Deadline > 0 && (eff.Deadline <= 0 || eff.Deadline > cap.Deadline) {
		eff.Deadline = cap.Deadline
	}
	if cap.MaxNodes > 0 && (eff.MaxNodes <= 0 || eff.MaxNodes > cap.MaxNodes) {
		eff.MaxNodes = cap.MaxNodes
	}
	if cap.MaxCacheBytes > 0 && (eff.MaxCacheBytes <= 0 || eff.MaxCacheBytes > cap.MaxCacheBytes) {
		eff.MaxCacheBytes = cap.MaxCacheBytes
	}
	return eff
}

// composePolicy builds the composite target policy the ldiv / tclose /
// alpha extensions select, or nil when none is active — the server-side
// twin of the CLI's policy flags.
func composePolicy(confs []string, p, k, ldiv int, tclose *float64, alpha float64) core.Policy {
	if ldiv <= 0 && tclose == nil && alpha <= 0 {
		return nil
	}
	var parts []core.Policy
	if alpha > 0 {
		parts = append(parts, core.PAlphaPolicy{P: p, K: k, Alpha: alpha, Attrs: confs})
	} else {
		parts = append(parts, core.PSensitiveKAnonymityPolicy{P: p, K: k, Attrs: confs})
	}
	for _, attr := range confs {
		if ldiv > 0 {
			parts = append(parts, core.DistinctLDiversityPolicy{Attr: attr, L: ldiv})
		}
		if tclose != nil {
			parts = append(parts, core.TClosenessPolicy{Attr: attr, T: *tclose})
		}
	}
	return core.All(parts...)
}
