package dataset

import (
	"strings"
	"testing"
)

// FuzzLoadTable drives parseAdult with arbitrary bytes: the parser must
// never panic, and any table it accepts must satisfy the loader's own
// range contracts (ages and capital fields in range, TaxPeriod one of
// the four filing periods). Seed corpus under testdata/fuzz.
func FuzzLoadTable(f *testing.F) {
	f.Add("39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n")
	f.Add("50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, >50K.\n")
	f.Add("")
	f.Add("# not a record\n.\n")
	f.Add("1,2,3\n")
	f.Add(strings.Repeat(",", 14) + "\n")
	f.Fuzz(func(t *testing.T, text string) {
		tbl, err := parseAdult(text)
		if err != nil {
			return
		}
		for i := 0; i < tbl.NumRows(); i++ {
			if v, err := tbl.Value(i, Age); err != nil || v.Int() < 0 || v.Int() > MaxAge {
				t.Fatalf("row %d: accepted age %v (err %v)", i, v, err)
			}
			if v, err := tbl.Value(i, CapitalGain); err != nil || v.Int() < 0 || v.Int() > MaxCapital {
				t.Fatalf("row %d: accepted capital gain %v (err %v)", i, v, err)
			}
			if v, err := tbl.Value(i, CapitalLoss); err != nil || v.Int() < 0 || v.Int() > MaxCapital {
				t.Fatalf("row %d: accepted capital loss %v (err %v)", i, v, err)
			}
			v, err := tbl.Value(i, TaxPeriod)
			if err != nil {
				t.Fatalf("row %d: tax period: %v", i, err)
			}
			switch v.Int() {
			case 1, 3, 6, 12:
			default:
				t.Fatalf("row %d: tax period %v outside the filing periods", i, v)
			}
		}
	})
}

// TestParseAdultHardening pins the validation added for hostile input:
// caps on size, line length and row count, and range checks on the
// numeric fields.
func TestParseAdultHardening(t *testing.T) {
	good := "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n"
	if _, err := parseAdult(good); err != nil {
		t.Fatalf("genuine record rejected: %v", err)
	}
	reject := []struct {
		name, text string
	}{
		{"age out of range", strings.Replace(good, "39,", "151,", 1)},
		{"age negative", strings.Replace(good, "39,", "-1,", 1)},
		{"age non-numeric", strings.Replace(good, "39,", "old,", 1)},
		{"age missing", strings.Replace(good, "39,", "?,", 1)},
		{"gain out of range", strings.Replace(good, " 2174,", " 10000001,", 1)},
		{"gain overflow", strings.Replace(good, " 2174,", " 99999999999999999999,", 1)},
		{"loss non-numeric", strings.Replace(good, " 0, 40,", " x, 40,", 1)},
		{"long line", strings.Replace(good, "State-gov", strings.Repeat("x", MaxLineBytes), 1)},
	}
	for _, tc := range reject {
		if _, err := parseAdult(tc.text); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
