package dataset

import (
	"reflect"
	"testing"
)

// TestGenerateBatchesDeterministicAndValid: identical parameters give
// identical streams, every batch has the requested churn size, and a
// liveness replay never sees a dead or out-of-range retire id.
func TestGenerateBatchesDeterministicAndValid(t *testing.T) {
	const baseRows, batches = 500, 8
	a, err := GenerateBatches(baseRows, batches, 0.05, 2006)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBatches(baseRows, batches, 0.05, 2006)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same parameters generated different streams")
	}
	if len(a) != batches {
		t.Fatalf("%d batches, want %d", len(a), batches)
	}
	cols := Schema().Names()
	if !reflect.DeepEqual(a[0].Columns, cols) {
		t.Fatalf("first batch declares %v", a[0].Columns)
	}
	const perBatch = 25 // 0.05 * 500
	live := make([]bool, baseRows)
	for i := range live {
		live[i] = true
	}
	next := baseRows
	for bi, batch := range a {
		if bi > 0 && batch.Columns != nil {
			t.Fatalf("batch %d re-declares columns", bi)
		}
		if err := batch.Validate(cols); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if len(batch.Retire) != perBatch || len(batch.Append) != perBatch {
			t.Fatalf("batch %d has %d retires / %d appends, want %d each", bi, len(batch.Retire), len(batch.Append), perBatch)
		}
		for _, id := range batch.Retire {
			if id < 0 || id >= next {
				t.Fatalf("batch %d retires unknown id %d (have %d)", bi, id, next)
			}
			if !live[id] {
				t.Fatalf("batch %d retires dead id %d", bi, id)
			}
			live[id] = false
		}
		for _, row := range batch.Append {
			if len(row) != len(cols) {
				t.Fatalf("batch %d appends a %d-cell row", bi, len(row))
			}
			live = append(live, true)
			next++
		}
	}
}

func TestGenerateBatchesBounds(t *testing.T) {
	// Tiny churn still moves at least one row per batch.
	small, err := GenerateBatches(100, 2, 0.0001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(small[0].Retire) != 1 || len(small[0].Append) != 1 {
		t.Fatalf("minimum churn batch: %d retires / %d appends", len(small[0].Retire), len(small[0].Append))
	}
	// Full churn is clamped to half the base so retires can't exhaust it.
	big, err := GenerateBatches(10, 1, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(big[0].Retire) != 5 {
		t.Fatalf("churn 1.0 retires %d of 10", len(big[0].Retire))
	}
	for _, bad := range []struct {
		rows, n int
		churn   float64
	}{{0, 1, 0.1}, {10, -1, 0.1}, {10, 1, -0.1}, {10, 1, 1.5}} {
		if _, err := GenerateBatches(bad.rows, bad.n, bad.churn, 1); err == nil {
			t.Errorf("GenerateBatches(%d, %d, %v) accepted", bad.rows, bad.n, bad.churn)
		}
	}
}
