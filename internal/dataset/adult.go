// Package dataset provides the Adult census microdata substrate used by
// the paper's experiments (Section 4).
//
// The reproduction environment is offline, so the UCI Adult file cannot
// be downloaded. Generate produces a deterministic synthetic Adult
// whose marginal distributions match the published UCI statistics for
// the attributes the paper uses (Age, MaritalStatus, Race, Sex) and
// attaches the paper's confidential attributes (Pay, CapitalGain,
// CapitalLoss, TaxPeriod) with Adult-like skew: capital fields are
// overwhelmingly zero, pay is a two-class attribute with roughly a
// 76/24 split. Load reads a genuine adult.data file when one is
// available, so the experiment harness runs unmodified on real data.
package dataset

import (
	"fmt"
	"math/rand"
	"os"

	"psk/internal/hierarchy"
	"psk/internal/table"
)

// Attribute names of the Adult microdata as used by the paper.
const (
	Age           = "Age"
	MaritalStatus = "MaritalStatus"
	Race          = "Race"
	Sex           = "Sex"
	Pay           = "Pay"
	CapitalGain   = "CapitalGain"
	CapitalLoss   = "CapitalLoss"
	TaxPeriod     = "TaxPeriod"
)

// QIs returns the paper's quasi-identifier set for Adult, in the
// lattice order used throughout Section 4: <A, M, R, S>.
func QIs() []string { return []string{Age, MaritalStatus, Race, Sex} }

// Confidential returns the paper's confidential attribute set.
func Confidential() []string { return []string{Pay, CapitalGain, CapitalLoss, TaxPeriod} }

// Schema returns the Adult schema with the paper's eight attributes.
func Schema() table.Schema {
	return table.MustSchema(
		table.Field{Name: Age, Type: table.Int},
		table.Field{Name: MaritalStatus, Type: table.String},
		table.Field{Name: Race, Type: table.String},
		table.Field{Name: Sex, Type: table.String},
		table.Field{Name: Pay, Type: table.String},
		table.Field{Name: CapitalGain, Type: table.Int},
		table.Field{Name: CapitalLoss, Type: table.Int},
		table.Field{Name: TaxPeriod, Type: table.Int},
	)
}

// weighted is a discrete distribution over string values.
type weighted struct {
	values  []string
	weights []float64 // cumulative
}

func newWeighted(pairs []struct {
	v string
	w float64
}) weighted {
	var d weighted
	sum := 0.0
	for _, p := range pairs {
		sum += p.w
		d.values = append(d.values, p.v)
		d.weights = append(d.weights, sum)
	}
	// Normalize the cumulative weights to end exactly at 1.
	for i := range d.weights {
		d.weights[i] /= sum
	}
	return d
}

func (d weighted) sample(r *rand.Rand) string {
	u := r.Float64()
	for i, w := range d.weights {
		if u <= w {
			return d.values[i]
		}
	}
	return d.values[len(d.values)-1]
}

// Marginals from the UCI Adult documentation (32561 training records).
var (
	maritalDist = newWeighted([]struct {
		v string
		w float64
	}{
		{"Married-civ-spouse", 0.4599},
		{"Never-married", 0.3288},
		{"Divorced", 0.1365},
		{"Separated", 0.0315},
		{"Widowed", 0.0305},
		{"Married-spouse-absent", 0.0125},
		{"Married-AF-spouse", 0.0007},
	})
	raceDist = newWeighted([]struct {
		v string
		w float64
	}{
		{"White", 0.8543},
		{"Black", 0.0959},
		{"Asian-Pac-Islander", 0.0312},
		{"Amer-Indian-Eskimo", 0.0096},
		{"Other", 0.0083},
	})
	sexDist = newWeighted([]struct {
		v string
		w float64
	}{
		{"Male", 0.6692},
		{"Female", 0.3308},
	})
	// Non-zero capital gains cluster on a small set of bracket values.
	gainValues = []int64{594, 2174, 3103, 4386, 5178, 7298, 7688, 10520, 15024, 99999}
	lossValues = []int64{1408, 1485, 1590, 1602, 1672, 1740, 1887, 1902, 1977, 2415}
	// TaxPeriod (months) is the paper's fourth confidential attribute;
	// the public UCI release lacks it, so we synthesize a plausible
	// 4-value distribution dominated by annual filers.
	taxPeriods = []int64{12, 6, 3, 1}
	taxWeights = []float64{0.80, 0.92, 0.97, 1.0} // cumulative
)

// Generate produces n synthetic Adult records, deterministic for a
// given seed.
func Generate(n int, seed int64) (*table.Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("dataset: negative size %d", n)
	}
	r := rand.New(rand.NewSource(seed))
	b, err := table.NewBuilder(Schema())
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		age := sampleAge(r)
		pay := samplePay(r, age)
		b.Append(
			table.IV(age),
			table.SV(maritalDist.sample(r)),
			table.SV(raceDist.sample(r)),
			table.SV(sexDist.sample(r)),
			table.SV(pay),
			table.IV(sampleGain(r, pay)),
			table.IV(sampleLoss(r)),
			table.IV(sampleTaxPeriod(r)),
		)
	}
	return b.Build()
}

// AdultRows is the record count of the full UCI Adult release
// (training + test split), the unit of GenerateScaled's replication.
const AdultRows = 48842

// scalePerturb is the per-field probability that a replicated record's
// categorical or confidential field is redrawn from its marginal
// distribution instead of copied, so replicas stay distribution-true
// without being row-for-row duplicates.
const scalePerturb = 0.05

// GenerateScaled produces the full 48,842-row Adult shape times factor,
// deterministic for a given seed: one synthetic base population of
// AdultRows records, then factor-1 perturbed replicas of it. Each
// replica row jitters the age by up to ±2 years (clamped to the 17..90
// hierarchy domain) and redraws every other field with probability
// scalePerturb, which preserves the marginal distributions and the
// generalization-hierarchy domains at every scale — the substrate the
// scale benchmarks and tests run on.
func GenerateScaled(factor int, seed int64) (*table.Table, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dataset: scale factor %d < 1", factor)
	}
	r := rand.New(rand.NewSource(seed))
	b, err := table.NewBuilder(Schema())
	if err != nil {
		return nil, err
	}
	type record struct {
		age, gain, loss, tax    int64
		marital, race, sex, pay string
	}
	base := make([]record, AdultRows)
	for i := range base {
		age := sampleAge(r)
		pay := samplePay(r, age)
		base[i] = record{
			age:     age,
			gain:    sampleGain(r, pay),
			loss:    sampleLoss(r),
			tax:     sampleTaxPeriod(r),
			marital: maritalDist.sample(r),
			race:    raceDist.sample(r),
			sex:     sexDist.sample(r),
			pay:     pay,
		}
		rec := &base[i]
		b.Append(
			table.IV(rec.age), table.SV(rec.marital), table.SV(rec.race), table.SV(rec.sex),
			table.SV(rec.pay), table.IV(rec.gain), table.IV(rec.loss), table.IV(rec.tax),
		)
	}
	for c := 1; c < factor; c++ {
		for i := range base {
			rec := base[i]
			rec.age += int64(r.Intn(5)) - 2
			if rec.age < 17 {
				rec.age = 17
			} else if rec.age > 90 {
				rec.age = 90
			}
			if r.Float64() < scalePerturb {
				rec.marital = maritalDist.sample(r)
			}
			if r.Float64() < scalePerturb {
				rec.race = raceDist.sample(r)
			}
			if r.Float64() < scalePerturb {
				rec.sex = sexDist.sample(r)
			}
			if r.Float64() < scalePerturb {
				rec.pay = samplePay(r, rec.age)
			}
			if r.Float64() < scalePerturb {
				rec.gain = sampleGain(r, rec.pay)
			}
			if r.Float64() < scalePerturb {
				rec.loss = sampleLoss(r)
			}
			if r.Float64() < scalePerturb {
				rec.tax = sampleTaxPeriod(r)
			}
			b.Append(
				table.IV(rec.age), table.SV(rec.marital), table.SV(rec.race), table.SV(rec.sex),
				table.SV(rec.pay), table.IV(rec.gain), table.IV(rec.loss), table.IV(rec.tax),
			)
		}
	}
	return b.Build()
}

// sampleAge draws from a right-skewed 17..90 distribution approximating
// Adult's age histogram (median ~37, thin tail past 70).
func sampleAge(r *rand.Rand) int64 {
	u := r.Float64()
	switch {
	case u < 0.55:
		return 17 + int64(r.Intn(28)) // 17..44, bulk of the mass
	case u < 0.90:
		return 35 + int64(r.Intn(26)) // 35..60
	case u < 0.985:
		return 55 + int64(r.Intn(21)) // 55..75
	default:
		return 71 + int64(r.Intn(20)) // 71..90 thin tail
	}
}

// samplePay draws the two-class income attribute with the documented
// 75.9/24.1 split, mildly correlated with age (earnings peak mid-career)
// as in the real data.
func samplePay(r *rand.Rand, age int64) string {
	p := 0.241
	switch {
	case age < 25:
		p = 0.05
	case age < 35:
		p = 0.20
	case age < 55:
		p = 0.33
	case age < 65:
		p = 0.28
	default:
		p = 0.15
	}
	if r.Float64() < p {
		return ">50K"
	}
	return "<=50K"
}

func sampleGain(r *rand.Rand, pay string) int64 {
	// 91.7% zeros overall; non-zero gains are likelier for high earners.
	zero := 0.95
	if pay == ">50K" {
		zero = 0.82
	}
	if r.Float64() < zero {
		return 0
	}
	return gainValues[r.Intn(len(gainValues))]
}

func sampleLoss(r *rand.Rand) int64 {
	if r.Float64() < 0.9533 {
		return 0
	}
	return lossValues[r.Intn(len(lossValues))]
}

func sampleTaxPeriod(r *rand.Rand) int64 {
	u := r.Float64()
	for i, w := range taxWeights {
		if u <= w {
			return taxPeriods[i]
		}
	}
	return taxPeriods[0]
}

// Hierarchies returns the paper's Table 7 generalization hierarchies:
//
//	Age:           74 values -> 10-year ranges -> {<50, >=50} -> *
//	MaritalStatus: 7 values  -> {Single, Married} -> *
//	Race:          5 values  -> {White, Black, Other} -> {White, Other} -> *
//	Sex:           2 values  -> *
//
// The induced lattice has 4*3*4*2 = 96 nodes and height 9, matching
// Section 4.
func Hierarchies() (*hierarchy.Set, error) {
	age, err := hierarchy.NewInterval(Age, []hierarchy.IntervalLevel{
		hierarchy.DecadeLevel("10-years ranges", 17, 90, 10),
		{Name: "<50 and >=50 groups", Cuts: []int64{50}, Labels: []string{"<50", ">=50"}},
		{Name: "one group", Cuts: nil, Labels: []string{hierarchy.Suppressed}},
	})
	if err != nil {
		return nil, err
	}
	marital, err := hierarchy.NewTree(MaritalStatus, map[string][]string{
		"Never-married":         {"Single", hierarchy.Suppressed},
		"Divorced":              {"Single", hierarchy.Suppressed},
		"Separated":             {"Single", hierarchy.Suppressed},
		"Widowed":               {"Single", hierarchy.Suppressed},
		"Married-civ-spouse":    {"Married", hierarchy.Suppressed},
		"Married-spouse-absent": {"Married", hierarchy.Suppressed},
		"Married-AF-spouse":     {"Married", hierarchy.Suppressed},
	})
	if err != nil {
		return nil, err
	}
	marital.WithLevelNames("Single or Married", "One group")
	race, err := hierarchy.NewTree(Race, map[string][]string{
		"White":              {"White", "White", hierarchy.Suppressed},
		"Black":              {"Black", "Other", hierarchy.Suppressed},
		"Asian-Pac-Islander": {"Other", "Other", hierarchy.Suppressed},
		"Amer-Indian-Eskimo": {"Other", "Other", hierarchy.Suppressed},
		"Other":              {"Other", "Other", hierarchy.Suppressed},
	})
	if err != nil {
		return nil, err
	}
	race.WithLevelNames("White, Black, or Other", "White or Other", "One group")
	sex := hierarchy.NewFlat(Sex)
	return hierarchy.NewSet(age, marital, race, sex)
}

// LatticePrefixes returns the paper's node-label prefixes <A,M,R,S>.
func LatticePrefixes() []string { return []string{"A", "M", "R", "S"} }

// Hard limits on microdata loading. Load accepts a user-supplied path,
// so the parser must fail cleanly on hostile or corrupt files rather
// than parse garbage into the search: the caps bound memory, and the
// range checks reject values no census record can hold (a mis-shifted
// column otherwise parses silently).
const (
	// MaxFileBytes caps the adult.data file size (the genuine file is
	// under 4 MiB; 256 MiB admits any plausible extension).
	MaxFileBytes = 256 << 20
	// MaxLineBytes caps a single record line.
	MaxLineBytes = 4096
	// MaxRows caps the record count of one file.
	MaxRows = 4 << 20
	// MaxAge / MaxCapital bound the validated numeric fields.
	MaxAge     = 150
	MaxCapital = 10_000_000
)

// Load reads a genuine UCI adult.data (or adult.test) file: 15
// comma-separated fields without a header. The paper's TaxPeriod
// attribute is absent from the public release; it is substituted by the
// hours-per-week field bucketed into the four filing periods, which
// preserves its role as a low-cardinality skewed confidential
// attribute (documented in DESIGN.md).
func Load(path string) (*table.Table, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return parseAdult(string(raw))
}

func parseAdult(text string) (*table.Table, error) {
	if len(text) > MaxFileBytes {
		return nil, fmt.Errorf("dataset: %d bytes of input exceeds the cap %d", len(text), MaxFileBytes)
	}
	b, err := table.NewBuilder(Schema())
	if err != nil {
		return nil, err
	}
	line, rows := 0, 0
	for start := 0; start < len(text); {
		end := start
		for end < len(text) && text[end] != '\n' {
			end++
		}
		row := text[start:end]
		start = end + 1
		line++
		if len(row) > MaxLineBytes {
			return nil, fmt.Errorf("dataset: line %d is %d bytes, cap is %d", line, len(row), MaxLineBytes)
		}
		row = trim(row)
		if row == "" || row == "." {
			continue
		}
		fields := splitTrim(row)
		if len(fields) != 15 {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want 15", line, len(fields))
		}
		rows++
		if rows > MaxRows {
			return nil, fmt.Errorf("dataset: more than %d records", MaxRows)
		}
		// UCI columns: 0 age, 5 marital-status, 8 race, 9 sex,
		// 10 capital-gain, 11 capital-loss, 12 hours-per-week, 14 class.
		if err := checkRange("age", fields[0], line, 0, MaxAge); err != nil {
			return nil, err
		}
		if err := checkRange("capital-gain", fields[10], line, 0, MaxCapital); err != nil {
			return nil, err
		}
		if err := checkRange("capital-loss", fields[11], line, 0, MaxCapital); err != nil {
			return nil, err
		}
		hours := atoiDefault(fields[12], 40)
		b.AppendText(
			fields[0],
			fields[5],
			fields[8],
			fields[9],
			trimDot(fields[14]),
			fields[10],
			fields[11],
			fmt.Sprint(hoursToTaxPeriod(hours)),
		)
	}
	return b.Build()
}

// checkRange validates a decimal field against [lo, hi]. Unlike
// atoiDefault it rejects rather than defaults: these fields feed the
// lattice hierarchies, where an out-of-range value is a corrupt record,
// not a missing one.
func checkRange(name, s string, line int, lo, hi int64) error {
	if s == "" || s == "?" {
		return fmt.Errorf("dataset: line %d: missing %s", line, name)
	}
	var n int64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return fmt.Errorf("dataset: line %d: %s %q is not a non-negative integer", line, name, s)
		}
		n = n*10 + int64(s[i]-'0')
		if n > hi {
			return fmt.Errorf("dataset: line %d: %s %q out of range [%d, %d]", line, name, s, lo, hi)
		}
	}
	if n < lo {
		return fmt.Errorf("dataset: line %d: %s %q out of range [%d, %d]", line, name, s, lo, hi)
	}
	return nil
}

func hoursToTaxPeriod(hours int) int {
	switch {
	case hours >= 35:
		return 12
	case hours >= 20:
		return 6
	case hours >= 10:
		return 3
	default:
		return 1
	}
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\r' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\r' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func trimDot(s string) string {
	if len(s) > 0 && s[len(s)-1] == '.' {
		return s[:len(s)-1]
	}
	return s
}

func splitTrim(row string) []string {
	var out []string
	field := ""
	for i := 0; i < len(row); i++ {
		if row[i] == ',' {
			out = append(out, trim(field))
			field = ""
			continue
		}
		field += string(row[i])
	}
	out = append(out, trim(field))
	return out
}

func atoiDefault(s string, def int) int {
	n := 0
	if s == "" {
		return def
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return def
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}
