package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"psk/internal/lattice"
	"psk/internal/table"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(500, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, _ := Generate(500, 7)
	if a.NumRows() != 500 {
		t.Fatalf("rows = %d", a.NumRows())
	}
	for r := 0; r < 500; r += 50 {
		x, _ := a.Row(r)
		y, _ := b.Row(r)
		for c := range x {
			if !x[c].Equal(y[c]) {
				t.Fatalf("same-seed rows differ at %d", r)
			}
		}
	}
	c, _ := Generate(500, 8)
	same := true
	for r := 0; r < 500 && same; r++ {
		x, _ := a.Row(r)
		y, _ := c.Row(r)
		for i := range x {
			if !x[i].Equal(y[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
	if _, err := Generate(-1, 1); err == nil {
		t.Error("negative size accepted")
	}
	empty, err := Generate(0, 1)
	if err != nil || empty.NumRows() != 0 {
		t.Errorf("Generate(0) = %d rows, %v", empty.NumRows(), err)
	}
}

// TestGenerateScaled pins the scale-up mode: factor x AdultRows rows,
// deterministic per seed, replicas perturbed but still inside the
// generalization-hierarchy domains.
func TestGenerateScaled(t *testing.T) {
	tbl, err := GenerateScaled(2, 11)
	if err != nil {
		t.Fatalf("GenerateScaled: %v", err)
	}
	if got, want := tbl.NumRows(), 2*AdultRows; got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	again, err := GenerateScaled(2, 11)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.NumRows(); r += 4999 {
		x, _ := tbl.Row(r)
		y, _ := again.Row(r)
		for c := range x {
			if !x[c].Equal(y[c]) {
				t.Fatalf("same-seed scaled rows differ at %d", r)
			}
		}
	}
	// The replica must be a perturbation, not a copy, of the base
	// population.
	differ := 0
	for r := 0; r < AdultRows; r += 97 {
		x, _ := tbl.Row(r)
		y, _ := tbl.Row(r + AdultRows)
		for c := range x {
			if !x[c].Equal(y[c]) {
				differ++
				break
			}
		}
	}
	if differ == 0 {
		t.Error("replica rows are identical to the base population")
	}
	// Every value the scaled table holds must still generalize: the
	// hierarchies cover the perturbed domains.
	hs, err := Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	ground := make(map[string][]string)
	for _, attr := range QIs() {
		vc, err := tbl.ValueCounts(attr)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vc {
			ground[attr] = append(ground[attr], v.Value.Str())
		}
	}
	if err := hs.Validate(ground); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if _, err := GenerateScaled(0, 1); err == nil {
		t.Error("zero factor accepted")
	}
}

// TestGenerateMarginals checks the synthetic marginals stay within
// loose tolerances of the published UCI Adult statistics — what the
// DESIGN.md substitution promises.
func TestGenerateMarginals(t *testing.T) {
	tbl, err := Generate(20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(tbl.NumRows())

	frac := func(attr, value string) float64 {
		col, err := tbl.Column(attr)
		if err != nil {
			t.Fatalf("column %s: %v", attr, err)
		}
		c := 0
		for i := 0; i < col.Len(); i++ {
			if col.Value(i).Str() == value {
				c++
			}
		}
		return float64(c) / n
	}

	checks := []struct {
		attr, value string
		want, tol   float64
	}{
		{Sex, "Male", 0.669, 0.02},
		{Race, "White", 0.854, 0.02},
		{Race, "Black", 0.096, 0.015},
		{MaritalStatus, "Married-civ-spouse", 0.460, 0.02},
		{MaritalStatus, "Never-married", 0.329, 0.02},
		{Pay, "<=50K", 0.759, 0.06},
		{CapitalGain, "0", 0.917, 0.04},
		{CapitalLoss, "0", 0.953, 0.02},
		{TaxPeriod, "12", 0.80, 0.02},
	}
	for _, c := range checks {
		got := frac(c.attr, c.value)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("P(%s=%s) = %.4f, want %.3f +/- %.3f", c.attr, c.value, got, c.want, c.tol)
		}
	}

	// Ages within [17, 90].
	ageCol, _ := tbl.Column(Age)
	for i := 0; i < ageCol.Len(); i++ {
		a := ageCol.Value(i).Int()
		if a < 17 || a > 90 {
			t.Fatalf("age %d out of range", a)
		}
	}
}

func TestGenerateAgeCardinality(t *testing.T) {
	// The paper reports 74 distinct ages; a large sample must come close
	// (17..90 = 74 possible values).
	tbl, _ := Generate(20000, 1)
	d, err := tbl.DistinctCount(Age)
	if err != nil {
		t.Fatal(err)
	}
	if d < 70 || d > 74 {
		t.Errorf("distinct ages = %d, want ~74", d)
	}
}

func TestHierarchiesMatchTable7(t *testing.T) {
	hs, err := Hierarchies()
	if err != nil {
		t.Fatalf("Hierarchies: %v", err)
	}
	dims, err := hs.Heights(QIs())
	if err != nil {
		t.Fatal(err)
	}
	lat, err := lattice.New(dims)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Size() != 96 || lat.Height() != 9 {
		t.Errorf("lattice = %d nodes height %d, want 96/9", lat.Size(), lat.Height())
	}

	// Spot-check Table 7 generalizations.
	age, _ := hs.Get(Age)
	got, err := age.Generalize("49", 2)
	if err != nil || got != "<50" {
		t.Errorf("Age 49@2 = %q, %v", got, err)
	}
	race, _ := hs.Get(Race)
	got, _ = race.Generalize("Asian-Pac-Islander", 1)
	if got != "Other" {
		t.Errorf("Race API@1 = %q", got)
	}
	got, _ = race.Generalize("Black", 2)
	if got != "Other" {
		t.Errorf("Race Black@2 = %q", got)
	}
	sex, _ := hs.Get(Sex)
	got, _ = sex.Generalize("Male", 1)
	if got != "*" {
		t.Errorf("Sex Male@1 = %q", got)
	}
	marital, _ := hs.Get(MaritalStatus)
	got, _ = marital.Generalize("Widowed", 1)
	if got != "Single" {
		t.Errorf("Marital Widowed@1 = %q", got)
	}
}

// TestHierarchiesCoverGeneratedData: every generated ground value must
// generalize without error at every level (Set.Validate).
func TestHierarchiesCoverGeneratedData(t *testing.T) {
	tbl, _ := Generate(2000, 3)
	hs, err := Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	ground := make(map[string][]string)
	for _, attr := range QIs() {
		vc, err := tbl.ValueCounts(attr)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vc {
			ground[attr] = append(ground[attr], v.Value.Str())
		}
	}
	if err := hs.Validate(ground); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLoadRealAdultFormat(t *testing.T) {
	// A two-line extract in genuine UCI format.
	text := `39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K
50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, >50K.
`
	dir := t.TempDir()
	path := filepath.Join(dir, "adult.data")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	v, _ := tbl.Value(0, Age)
	if v.Int() != 39 {
		t.Errorf("age = %v", v)
	}
	v, _ = tbl.Value(0, MaritalStatus)
	if v.Str() != "Never-married" {
		t.Errorf("marital = %v", v)
	}
	v, _ = tbl.Value(0, CapitalGain)
	if v.Int() != 2174 {
		t.Errorf("gain = %v", v)
	}
	// Pay keeps the class label, with the test-file trailing dot removed.
	v, _ = tbl.Value(1, Pay)
	if v.Str() != ">50K" {
		t.Errorf("pay = %v", v)
	}
	// TaxPeriod substitution: 40 hours -> 12; 13 hours -> 3.
	v, _ = tbl.Value(0, TaxPeriod)
	if v.Int() != 12 {
		t.Errorf("tax period = %v", v)
	}
	v, _ = tbl.Value(1, TaxPeriod)
	if v.Int() != 3 {
		t.Errorf("tax period = %v", v)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/adult.data"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.data")
	os.WriteFile(path, []byte("1,2,3\n"), 0o644)
	if _, err := Load(path); err == nil {
		t.Error("short row accepted")
	}
}

func TestSchemaAndAttributeLists(t *testing.T) {
	sch := Schema()
	if sch.Len() != 8 {
		t.Errorf("schema fields = %d", sch.Len())
	}
	for _, a := range append(QIs(), Confidential()...) {
		if !sch.Has(a) {
			t.Errorf("schema missing %s", a)
		}
	}
	if len(LatticePrefixes()) != len(QIs()) {
		t.Error("prefix count mismatch")
	}
}

// TestSampleCompatibility: the paper samples 400 and 4000 records; the
// sample must preserve the schema and be drawable deterministically.
func TestSampleCompatibility(t *testing.T) {
	tbl, _ := Generate(10000, 99)
	s400, err := tbl.Sample(400, 1)
	if err != nil || s400.NumRows() != 400 {
		t.Fatalf("sample 400: %d, %v", s400.NumRows(), err)
	}
	s4000, err := tbl.Sample(4000, 2)
	if err != nil || s4000.NumRows() != 4000 {
		t.Fatalf("sample 4000: %d, %v", s4000.NumRows(), err)
	}
	if !s400.Schema().Equal(tbl.Schema()) {
		t.Error("sample schema mismatch")
	}
}

// TestConfidentialCardinalities: the confidential attributes must admit
// 2-sensitivity (every s_j >= 2) so Table 8's experiment is well posed.
func TestConfidentialCardinalities(t *testing.T) {
	tbl, _ := Generate(4000, 5)
	for _, attr := range Confidential() {
		d, err := tbl.DistinctCount(attr)
		if err != nil {
			t.Fatal(err)
		}
		if d < 2 {
			t.Errorf("%s has %d distinct values; need >= 2", attr, d)
		}
	}
}

var sinkTable *table.Table

func BenchmarkGenerate4000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := Generate(4000, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = tbl
	}
}
