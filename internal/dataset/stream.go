package dataset

import (
	"fmt"
	"math/rand"
	"strconv"

	"psk/internal/stream"
)

// GenerateBatches derives a deterministic append/retire delta stream
// against a base table of baseRows Adult records: every batch retires
// round(churn * baseRows) live rows (never more than half the live set)
// and appends as many freshly sampled Adult records, so the live row
// count stays at baseRows while the population turns over. Row ids
// follow stream order — the base table's rows are 0..baseRows-1 and
// each appended row takes the next id — matching the ledger's
// numbering, and the generator tracks liveness itself so no batch ever
// retires a dead or unknown id. The first batch declares the Adult
// column names for schema validation on the consumer side.
//
// The sampled records come from the same marginal distributions
// Generate and GenerateScaled draw from, so churn preserves the
// dataset's shape (a benchmark's group structure drifts, it does not
// degenerate). Deterministic for a given (baseRows, batches, churn,
// seed).
func GenerateBatches(baseRows, batches int, churn float64, seed int64) ([]stream.Batch, error) {
	if baseRows < 1 {
		return nil, fmt.Errorf("dataset: delta stream over %d base rows", baseRows)
	}
	if batches < 0 {
		return nil, fmt.Errorf("dataset: negative batch count %d", batches)
	}
	if churn < 0 || churn > 1 {
		return nil, fmt.Errorf("dataset: churn %v outside [0, 1]", churn)
	}
	perBatch := int(churn*float64(baseRows) + 0.5)
	if perBatch < 1 {
		perBatch = 1
	}
	if perBatch > baseRows/2 {
		perBatch = baseRows / 2
	}
	r := rand.New(rand.NewSource(seed))
	live := make([]bool, baseRows, baseRows+batches*perBatch)
	for i := range live {
		live[i] = true
	}
	nLive := baseRows
	out := make([]stream.Batch, 0, batches)
	for bi := 0; bi < batches; bi++ {
		b := stream.Batch{
			Retire: make([]int, 0, perBatch),
			Append: make([][]string, 0, perBatch),
		}
		if bi == 0 {
			b.Columns = Schema().Names()
		}
		for len(b.Retire) < perBatch && nLive > 0 {
			id := r.Intn(len(live))
			if !live[id] {
				continue
			}
			live[id] = false
			nLive--
			b.Retire = append(b.Retire, id)
		}
		for i := 0; i < perBatch; i++ {
			b.Append = append(b.Append, sampleAdultCells(r))
			live = append(live, true)
			nLive++
		}
		out = append(out, b)
	}
	return out, nil
}

// sampleAdultCells draws one Adult record as textual cells in schema
// order, from the same marginals the table generators use.
func sampleAdultCells(r *rand.Rand) []string {
	age := sampleAge(r)
	pay := samplePay(r, age)
	return []string{
		strconv.FormatInt(age, 10),
		maritalDist.sample(r),
		raceDist.sample(r),
		sexDist.sample(r),
		pay,
		strconv.FormatInt(sampleGain(r, pay), 10),
		strconv.FormatInt(sampleLoss(r), 10),
		strconv.FormatInt(sampleTaxPeriod(r), 10),
	}
}
