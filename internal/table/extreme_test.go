package table

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// These tests pin the unsigned-span arithmetic in intDict and
// packedPlan: int columns holding values near the edges of the int64
// domain used to wrap the signed span computation (MinInt64..MaxInt64
// wraps to 0, ±2^62 wraps negative), slipping past the dense-structure
// caps and panicking instead of falling back to the map paths.

// TestIntDictExtremeSpans: the dictionary must take the map path for
// any span that exceeds (or wraps past) intDictMaxSpan and still rank
// values in ascending order.
func TestIntDictExtremeSpans(t *testing.T) {
	cases := []struct {
		name  string
		vals  []int64
		dense bool
	}{
		{"full-domain", []int64{math.MinInt64, 0, math.MaxInt64, math.MinInt64}, false},
		{"wrap-negative", []int64{-(1 << 62), 1 << 62, 0, 1 << 62}, false},
		{"over-cap", []int64{0, intDictMaxSpan}, false},
		{"narrow", []int64{-3, 5, -3, 4}, true},
		{"narrow-negative", []int64{math.MinInt64, math.MinInt64 + 7}, true},
	}
	for _, tc := range cases {
		c := &intColumn{vals: tc.vals}
		d := c.intDict()
		if (d.dense != nil) != tc.dense {
			t.Errorf("%s: dense lookup = %v, want %v", tc.name, d.dense != nil, tc.dense)
			continue
		}
		set := map[int64]bool{}
		for _, v := range tc.vals {
			set[v] = true
		}
		want := make([]int64, 0, len(set))
		for v := range set {
			want = append(want, v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(d.vals, want) {
			t.Errorf("%s: dict vals = %v, want %v", tc.name, d.vals, want)
		}
		for rank, v := range want {
			if got := d.id(v); got != int32(rank) {
				t.Errorf("%s: id(%d) = %d, want rank %d", tc.name, v, got, rank)
			}
		}
	}
}

// extremeIntMicrodata builds a small table whose int column spans the
// full int64 domain, with known QI-group structure.
func extremeIntMicrodata(t *testing.T) *Table {
	t.Helper()
	schema := MustSchema(Field{Name: "A", Type: String}, Field{Name: "B", Type: Int})
	b, err := NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		a string
		b int64
	}{
		{"x", math.MinInt64},
		{"x", math.MaxInt64},
		{"x", math.MinInt64},
		{"y", 0},
		{"x", math.MaxInt64},
	}
	for _, r := range rows {
		b.Append(SV(r.a), IV(r.b))
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestGroupStatsExtremeIntConf: GroupStats with a full-domain int
// confidential column must match the rowwise oracle instead of
// panicking in the chunked kernel's dense-id projection.
func TestGroupStatsExtremeIntConf(t *testing.T) {
	tbl := extremeIntMicrodata(t)
	want, err := tbl.GroupStatsRowwise([]string{"A"}, []string{"B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := tbl.GroupStats([]string{"A"}, []string{"B"}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: chunked and rowwise stats disagree on extreme int conf", workers)
		}
	}
}

// TestRemappedColumnExtremeInt: the code-remapping fast path must
// handle a full-domain int source column (its dictionary takes the map
// lookup) and agree with MappedColumn row-for-row.
func TestRemappedColumnExtremeInt(t *testing.T) {
	tbl := extremeIntMicrodata(t)
	fn := func(v Value) (string, error) { return "g:" + v.Str(), nil }
	mapped, err := tbl.MappedColumn("B", fn)
	if err != nil {
		t.Fatal(err)
	}
	remapped, err := tbl.RemappedColumn("B", fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumRows(); i++ {
		if !mapped.Value(i).Equal(remapped.Value(i)) {
			t.Fatalf("row %d: %v != %v", i, mapped.Value(i), remapped.Value(i))
		}
	}
}

// TestGroupByExtremeIntKey: a full-domain int key column must fall back
// to byte-string keys (the wrapped span poisoned the packed plan's
// stride: alone it indexed an empty key table, combined it divided by
// zero) and still group correctly.
func TestGroupByExtremeIntKey(t *testing.T) {
	tbl := extremeIntMicrodata(t)
	check := func(name string, groups []Group, want [][]int) {
		t.Helper()
		if len(groups) != len(want) {
			t.Fatalf("%s: %d groups, want %d", name, len(groups), len(want))
		}
		for i, g := range groups {
			if !reflect.DeepEqual(g.Rows, want[i]) {
				t.Fatalf("%s: group %d rows = %v, want %v", name, i, g.Rows, want[i])
			}
		}
	}
	gb, err := tbl.GroupBy("B")
	if err != nil {
		t.Fatal(err)
	}
	check("B", gb, [][]int{{0, 2}, {1, 4}, {3}})
	gba, err := tbl.GroupBy("B", "A")
	if err != nil {
		t.Fatal(err)
	}
	check("B,A", gba, [][]int{{0, 2}, {1, 4}, {3}})
	n, err := tbl.NumGroups("B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("NumGroups = %d, want 3", n)
	}
}
