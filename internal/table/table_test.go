package table

import (
	"errors"
	"strings"
	"testing"
)

func patientSchema() Schema {
	return MustSchema(
		Field{Name: "Age", Type: Int},
		Field{Name: "ZipCode", Type: String},
		Field{Name: "Sex", Type: String},
		Field{Name: "Illness", Type: String},
	)
}

// patientTable reproduces Table 1 of the paper.
func patientTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := FromText(patientSchema(), [][]string{
		{"50", "43102", "M", "Colon Cancer"},
		{"30", "43102", "F", "Breast Cancer"},
		{"30", "43102", "F", "HIV"},
		{"20", "43102", "M", "Diabetes"},
		{"20", "43102", "M", "Diabetes"},
		{"50", "43102", "M", "Heart Disease"},
	})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	return tbl
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Field{Name: "a"}, Field{Name: "a"}); err == nil {
		t.Fatal("duplicate field names not rejected")
	}
	if _, err := NewSchema(Field{Name: ""}); err == nil {
		t.Fatal("empty field name not rejected")
	}
	s := MustSchema(Field{Name: "x", Type: Int}, Field{Name: "y", Type: String})
	if got := s.Index("y"); got != 1 {
		t.Errorf("Index(y) = %d, want 1", got)
	}
	if got := s.Index("z"); got != -1 {
		t.Errorf("Index(z) = %d, want -1", got)
	}
	if !s.Has("x") || s.Has("z") {
		t.Error("Has misreports membership")
	}
	if got := s.String(); got != "x:int, y:string" {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaProject(t *testing.T) {
	s := patientSchema()
	p, err := s.Project([]string{"Sex", "Age"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Len() != 2 || p.Fields[0].Name != "Sex" || p.Fields[1].Name != "Age" {
		t.Errorf("Project produced %v", p)
	}
	if _, err := s.Project([]string{"Nope"}); !errors.Is(err, ErrNoColumn) {
		t.Errorf("Project missing column err = %v, want ErrNoColumn", err)
	}
}

func TestBuilderArityError(t *testing.T) {
	b, err := NewBuilder(patientSchema())
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	b.AppendText("50", "43102", "M") // one cell short
	if _, err := b.Build(); !errors.Is(err, ErrArity) {
		t.Errorf("Build err = %v, want ErrArity", err)
	}
}

func TestBuilderTypeError(t *testing.T) {
	b, _ := NewBuilder(patientSchema())
	b.AppendText("not-a-number", "43102", "M", "Flu")
	if _, err := b.Build(); err == nil {
		t.Error("expected parse error for non-integer Age")
	}
}

func TestBuilderEmptySchema(t *testing.T) {
	if _, err := NewBuilder(Schema{}); !errors.Is(err, ErrEmptySchema) {
		t.Errorf("err = %v, want ErrEmptySchema", err)
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := patientTable(t)
	if tbl.NumRows() != 6 || tbl.NumCols() != 4 {
		t.Fatalf("dims = %dx%d, want 6x4", tbl.NumRows(), tbl.NumCols())
	}
	v, err := tbl.Value(3, "Illness")
	if err != nil || v.Str() != "Diabetes" {
		t.Errorf("Value(3, Illness) = %v, %v", v, err)
	}
	if _, err := tbl.Value(99, "Illness"); !errors.Is(err, ErrRowRange) {
		t.Errorf("out-of-range err = %v", err)
	}
	if _, err := tbl.Value(0, "Nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing column err = %v", err)
	}
	row, err := tbl.Row(0)
	if err != nil {
		t.Fatalf("Row: %v", err)
	}
	if row[0].Int() != 50 || row[3].Str() != "Colon Cancer" {
		t.Errorf("Row(0) = %v", row)
	}
}

func TestSelectSharesData(t *testing.T) {
	tbl := patientTable(t)
	sel, err := tbl.Select("Sex", "Illness")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if sel.NumCols() != 2 || sel.NumRows() != 6 {
		t.Fatalf("Select dims wrong: %dx%d", sel.NumRows(), sel.NumCols())
	}
	v, _ := sel.Value(2, "Illness")
	if v.Str() != "HIV" {
		t.Errorf("selected value = %q", v.Str())
	}
	if _, err := tbl.Select("Missing"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("Select missing err = %v", err)
	}
}

func TestGatherAndFilter(t *testing.T) {
	tbl := patientTable(t)
	g, err := tbl.Gather([]int{5, 0})
	if err != nil {
		t.Fatalf("Gather: %v", err)
	}
	v, _ := g.Value(0, "Illness")
	if v.Str() != "Heart Disease" {
		t.Errorf("gathered row 0 = %q", v.Str())
	}
	if _, err := tbl.Gather([]int{6}); !errors.Is(err, ErrRowRange) {
		t.Errorf("Gather out-of-range err = %v", err)
	}
	males := tbl.Filter(func(r int) bool {
		v, _ := tbl.Value(r, "Sex")
		return v.Str() == "M"
	})
	if males.NumRows() != 4 {
		t.Errorf("male rows = %d, want 4", males.NumRows())
	}
}

func TestFilterEmptyResult(t *testing.T) {
	tbl := patientTable(t)
	none := tbl.Filter(func(int) bool { return false })
	if none.NumRows() != 0 {
		t.Errorf("empty filter rows = %d", none.NumRows())
	}
	if none.NumCols() != 4 {
		t.Errorf("empty filter cols = %d", none.NumCols())
	}
}

func TestMapColumn(t *testing.T) {
	tbl := patientTable(t)
	dec, err := tbl.MapColumn("Age", func(v Value) (string, error) {
		d := v.Int() / 10 * 10
		return IV(d).Str() + "s", nil
	})
	if err != nil {
		t.Fatalf("MapColumn: %v", err)
	}
	v, _ := dec.Value(0, "Age")
	if v.Str() != "50s" {
		t.Errorf("mapped = %q", v.Str())
	}
	// Original untouched.
	orig, _ := tbl.Value(0, "Age")
	if orig.Int() != 50 {
		t.Errorf("original mutated: %v", orig)
	}
	// Schema type updated.
	if dec.Schema().Fields[0].Type != String {
		t.Errorf("mapped column type = %v, want String", dec.Schema().Fields[0].Type)
	}
}

func TestGroupBy(t *testing.T) {
	tbl := patientTable(t)
	groups, err := tbl.GroupBy("Age", "ZipCode", "Sex")
	if err != nil {
		t.Fatalf("GroupBy: %v", err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	// Every group in Table 1 has exactly 2 members (2-anonymity).
	for _, g := range groups {
		if g.Size() != 2 {
			t.Errorf("group %s size = %d, want 2", g.KeyString(), g.Size())
		}
	}
	n, err := tbl.NumGroups("Age", "ZipCode", "Sex")
	if err != nil || n != 3 {
		t.Errorf("NumGroups = %d, %v; want 3", n, err)
	}
}

func TestGroupByNoColumns(t *testing.T) {
	tbl := patientTable(t)
	if _, err := tbl.GroupBy(); err == nil {
		t.Error("GroupBy() with no columns should fail")
	}
	if _, err := tbl.NumGroups(); err == nil {
		t.Error("NumGroups() with no columns should fail")
	}
}

func TestDistinctCount(t *testing.T) {
	tbl := patientTable(t)
	n, err := tbl.DistinctCount("Illness")
	if err != nil || n != 5 {
		t.Errorf("DistinctCount(Illness) = %d, %v; want 5", n, err)
	}
	n, err = tbl.DistinctCount("ZipCode")
	if err != nil || n != 1 {
		t.Errorf("DistinctCount(ZipCode) = %d, %v; want 1", n, err)
	}
	if _, err := tbl.DistinctCount("Nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing column err = %v", err)
	}
}

func TestDistinctInRows(t *testing.T) {
	tbl := patientTable(t)
	n, err := tbl.DistinctInRows("Illness", []int{3, 4})
	if err != nil || n != 1 {
		t.Errorf("DistinctInRows = %d, %v; want 1 (both Diabetes)", n, err)
	}
	n, _ = tbl.DistinctInRows("Illness", []int{0, 5})
	if n != 2 {
		t.Errorf("DistinctInRows = %d, want 2", n)
	}
}

func TestValueCounts(t *testing.T) {
	tbl := patientTable(t)
	vc, err := tbl.ValueCounts("Illness")
	if err != nil {
		t.Fatalf("ValueCounts: %v", err)
	}
	if len(vc) != 5 {
		t.Fatalf("distinct illnesses = %d, want 5", len(vc))
	}
	if vc[0].Value.Str() != "Diabetes" || vc[0].Count != 2 {
		t.Errorf("top count = %v/%d, want Diabetes/2", vc[0].Value, vc[0].Count)
	}
	// Descending order invariant.
	for i := 1; i < len(vc); i++ {
		if vc[i].Count > vc[i-1].Count {
			t.Errorf("counts not descending at %d", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := patientTable(t)
	var buf strings.Builder
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	sch := patientSchema()
	back, err := ReadCSV(strings.NewReader(buf.String()), &sch)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), tbl.NumRows())
	}
	for r := 0; r < tbl.NumRows(); r++ {
		want, _ := tbl.Row(r)
		got, _ := back.Row(r)
		for c := range want {
			if !want[c].Equal(got[c]) {
				t.Errorf("row %d col %d: got %v want %v", r, c, got[c], want[c])
			}
		}
	}
}

func TestReadCSVInferredSchema(t *testing.T) {
	in := "A,B\nx,1\ny,2\n"
	tbl, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	// Inferred columns are all strings.
	if tbl.Schema().Fields[1].Type != String {
		t.Errorf("inferred type = %v", tbl.Schema().Fields[1].Type)
	}
}

func TestReadCSVColumnReorder(t *testing.T) {
	// CSV column order differs from schema order; match by name.
	in := "Sex,Age,Illness,ZipCode\nM,50,Flu,43102\n"
	sch := patientSchema()
	tbl, err := ReadCSV(strings.NewReader(in), &sch)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	v, _ := tbl.Value(0, "Age")
	if v.Int() != 50 {
		t.Errorf("Age = %v", v)
	}
	v, _ = tbl.Value(0, "ZipCode")
	if v.Str() != "43102" {
		t.Errorf("ZipCode = %v", v)
	}
}

func TestReadCSVErrors(t *testing.T) {
	sch := patientSchema()
	if _, err := ReadCSV(strings.NewReader("A,B\n1,2\n"), &sch); err == nil {
		t.Error("mismatched column count not rejected")
	}
	if _, err := ReadCSV(strings.NewReader("Age,ZipCode,Sex,Wrong\n"), &sch); err == nil {
		t.Error("unknown header not rejected")
	}
	if _, err := ReadCSV(strings.NewReader(""), &sch); err == nil {
		t.Error("empty stream not rejected")
	}
}

func TestSampleDeterministic(t *testing.T) {
	tbl := patientTable(t)
	a, err := tbl.Sample(3, 42)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	b, _ := tbl.Sample(3, 42)
	if a.NumRows() != 3 || b.NumRows() != 3 {
		t.Fatalf("sample sizes %d, %d", a.NumRows(), b.NumRows())
	}
	for r := 0; r < 3; r++ {
		x, _ := a.Row(r)
		y, _ := b.Row(r)
		for c := range x {
			if !x[c].Equal(y[c]) {
				t.Errorf("same-seed samples differ at row %d", r)
			}
		}
	}
	c, _ := tbl.Sample(3, 43)
	_ = c // different seed may differ; just must not error
	if _, err := tbl.Sample(-1, 1); err == nil {
		t.Error("negative sample size not rejected")
	}
	full, _ := tbl.Sample(100, 1)
	if full.NumRows() != 6 {
		t.Errorf("oversized sample rows = %d, want all 6", full.NumRows())
	}
}

func TestSortBy(t *testing.T) {
	tbl := patientTable(t)
	sorted, err := tbl.SortBy("Age", "Illness")
	if err != nil {
		t.Fatalf("SortBy: %v", err)
	}
	prev := int64(-1)
	for r := 0; r < sorted.NumRows(); r++ {
		v, _ := sorted.Value(r, "Age")
		if v.Int() < prev {
			t.Errorf("not sorted at row %d", r)
		}
		prev = v.Int()
	}
}

func TestHeadAndClone(t *testing.T) {
	tbl := patientTable(t)
	h := tbl.Head(2)
	if h.NumRows() != 2 {
		t.Errorf("Head rows = %d", h.NumRows())
	}
	h10 := tbl.Head(10)
	if h10.NumRows() != 6 {
		t.Errorf("Head(10) rows = %d", h10.NumRows())
	}
	cl := tbl.Clone()
	if cl.NumRows() != 6 || !cl.Schema().Equal(tbl.Schema()) {
		t.Error("Clone mismatch")
	}
}

func TestFormat(t *testing.T) {
	tbl := patientTable(t)
	s := tbl.Format(2)
	if !strings.Contains(s, "Age") || !strings.Contains(s, "(6 rows total)") {
		t.Errorf("Format output unexpected:\n%s", s)
	}
	full := tbl.String()
	if strings.Contains(full, "rows total") {
		t.Errorf("String() should show all 6 rows:\n%s", full)
	}
}

func TestValueConversions(t *testing.T) {
	cases := []struct {
		v    Value
		str  string
		i    int64
		f    float64
		kind Type
	}{
		{SV("abc"), "abc", 0, 0, String},
		{SV("42"), "42", 42, 42, String},
		{IV(-7), "-7", -7, -7, Int},
		{FV(2.5), "2.5", 2, 2.5, Float},
	}
	for _, c := range cases {
		if c.v.Str() != c.str || c.v.Int() != c.i || c.v.Float() != c.f || c.v.Kind() != c.kind {
			t.Errorf("conversions for %v: %q %d %g %v", c.v, c.v.Str(), c.v.Int(), c.v.Float(), c.v.Kind())
		}
	}
}

func TestValueCompare(t *testing.T) {
	if IV(1).Compare(IV(2)) != -1 || IV(2).Compare(IV(1)) != 1 || IV(3).Compare(IV(3)) != 0 {
		t.Error("int compare broken")
	}
	if IV(1).Compare(FV(1.5)) != -1 {
		t.Error("mixed numeric compare broken")
	}
	if SV("a").Compare(SV("b")) != -1 || SV("b").Compare(SV("a")) != 1 {
		t.Error("string compare broken")
	}
	if !SV("x").Equal(SV("x")) || SV("x").Equal(SV("y")) {
		t.Error("Equal broken")
	}
}

func TestParseType(t *testing.T) {
	for _, s := range []string{"string", "int", "float"} {
		if _, err := ParseType(s); err != nil {
			t.Errorf("ParseType(%q): %v", s, err)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
	if Int.String() != "int" || String.String() != "string" || Float.String() != "float" {
		t.Error("Type.String broken")
	}
	if Type(9).String() == "" {
		t.Error("unknown type string empty")
	}
}

func TestDrop(t *testing.T) {
	tbl := patientTable(t)
	out, err := tbl.Drop("Age", "Sex")
	if err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if out.NumCols() != 2 || out.Schema().Has("Age") || !out.Schema().Has("Illness") {
		t.Errorf("dropped schema = %v", out.Schema())
	}
	if out.NumRows() != 6 {
		t.Errorf("rows = %d", out.NumRows())
	}
	if _, err := tbl.Drop("Missing"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown column err = %v", err)
	}
	if _, err := tbl.Drop("Age", "ZipCode", "Sex", "Illness"); !errors.Is(err, ErrEmptySchema) {
		t.Errorf("drop-all err = %v", err)
	}
}

func TestRename(t *testing.T) {
	tbl := patientTable(t)
	out, err := tbl.Rename("Illness", "Diagnosis")
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	v, err := out.Value(0, "Diagnosis")
	if err != nil || v.Str() != "Colon Cancer" {
		t.Errorf("renamed value = %v, %v", v, err)
	}
	// Original table untouched.
	if !tbl.Schema().Has("Illness") {
		t.Error("Rename mutated the source schema")
	}
	if _, err := tbl.Rename("Missing", "X"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown column err = %v", err)
	}
	// Renaming onto an existing name is a schema violation.
	if _, err := tbl.Rename("Illness", "Age"); err == nil {
		t.Error("duplicate rename accepted")
	}
}

func TestConcat(t *testing.T) {
	tbl := patientTable(t)
	both, err := tbl.Concat(tbl)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if both.NumRows() != 12 {
		t.Errorf("rows = %d", both.NumRows())
	}
	a, _ := both.Value(0, "Illness")
	b, _ := both.Value(6, "Illness")
	if !a.Equal(b) {
		t.Error("second copy mismatched")
	}
	other, _ := tbl.Select("Age", "Sex")
	if _, err := tbl.Concat(other); err == nil {
		t.Error("schema mismatch accepted")
	}
}
