package table

import "errors"

// Sentinel errors returned by the table engine. Callers match them with
// errors.Is.
var (
	// ErrNoColumn is returned when a referenced column does not exist.
	ErrNoColumn = errors.New("no such column")
	// ErrArity is returned when a row has the wrong number of cells.
	ErrArity = errors.New("row arity does not match schema")
	// ErrRowRange is returned for out-of-range row indices.
	ErrRowRange = errors.New("row index out of range")
	// ErrEmptySchema is returned when building a table with no fields.
	ErrEmptySchema = errors.New("empty schema")
)
