package table

import "fmt"

// Builder accumulates rows for a table. It is not safe for concurrent
// use; build in one goroutine and share the resulting immutable Table.
type Builder struct {
	schema Schema
	cols   []Column
	nrows  int
	err    error
}

// NewBuilder returns a builder for the given schema.
func NewBuilder(schema Schema) (*Builder, error) {
	if schema.Len() == 0 {
		return nil, fmt.Errorf("table: %w", ErrEmptySchema)
	}
	cols := make([]Column, schema.Len())
	for i, f := range schema.Fields {
		cols[i] = NewColumn(f.Type)
	}
	return &Builder{schema: schema, cols: cols}, nil
}

// Append adds one row of typed values. It records the first error and
// ignores subsequent rows after an error; Build reports it.
func (b *Builder) Append(row ...Value) {
	if b.err != nil {
		return
	}
	if len(row) != len(b.cols) {
		b.err = fmt.Errorf("table: %w: got %d cells, want %d", ErrArity, len(row), len(b.cols))
		return
	}
	for i, v := range row {
		if err := b.cols[i].AppendValue(v); err != nil {
			b.err = err
			return
		}
	}
	b.nrows++
}

// AppendText adds one row of textual cells, parsing each according to
// the column type.
func (b *Builder) AppendText(row ...string) {
	if b.err != nil {
		return
	}
	if len(row) != len(b.cols) {
		b.err = fmt.Errorf("table: %w: got %d cells, want %d", ErrArity, len(row), len(b.cols))
		return
	}
	for i, s := range row {
		if err := b.cols[i].AppendText(s); err != nil {
			b.err = fmt.Errorf("row %d: %w", b.nrows, err)
			return
		}
	}
	b.nrows++
}

// Len reports the number of rows appended so far.
func (b *Builder) Len() int { return b.nrows }

// Build finalizes the table. The builder must not be used afterwards.
// Columns are frozen into their read-optimized form (bit-packed
// dictionary codes) here, before the table can be shared across
// goroutines.
func (b *Builder) Build() (*Table, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, c := range b.cols {
		if f, ok := c.(freezer); ok {
			f.freeze()
		}
	}
	return &Table{schema: b.schema, cols: b.cols, nrows: b.nrows}, nil
}

// FromRows builds a table from a schema and typed rows; convenient for
// tests and examples.
func FromRows(schema Schema, rows [][]Value) (*Table, error) {
	b, err := NewBuilder(schema)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		b.Append(r...)
	}
	return b.Build()
}

// FromText builds a table from a schema and textual rows.
func FromText(schema Schema, rows [][]string) (*Table, error) {
	b, err := NewBuilder(schema)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		b.AppendText(r...)
	}
	return b.Build()
}
