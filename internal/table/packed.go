package table

// This file implements the frozen storage format of dictionary codes.
// A column under construction keeps its codes as a plain []int32; when
// the table is built (or a derived column is assembled) the codes are
// packed to ceil(log2(cardinality)) bits each, so a million-row column
// over a 74-value dictionary costs 7 bits per row instead of 32. Hot
// loops read codes back in blocks through appendRange — one bounds
// check and one or two word loads per code, no per-row interface call.

// packWidth is the widest per-code bit width that is stored packed.
// Wider dictionaries (beyond 2^16 distinct values) take the unpacked
// fast path: a flat []uint32, which reads faster than straddled
// multi-word extraction and still halves the []int64-era footprint.
const packWidth = 16

// packedCodes is immutable bit-packed code storage. Exactly one of
// words/raw is populated: words when width <= packWidth (codes laid
// end-to-end, little-endian within each uint64, entries may straddle a
// word boundary), raw otherwise.
type packedCodes struct {
	n     int
	width uint8
	words []uint64
	raw   []uint32
}

// codeWidth returns the bit width needed for codes in [0, card):
// ceil(log2(card)), minimum 1 so a constant column still occupies a
// well-defined stream.
func codeWidth(card int) uint8 {
	w := uint8(1)
	for card > 1<<w {
		w++
	}
	return w
}

// packCodes freezes a code slice whose values lie in [0, card).
func packCodes(codes []int32, card int) packedCodes {
	p := packedCodes{n: len(codes), width: codeWidth(card)}
	if p.width > packWidth {
		p.raw = make([]uint32, len(codes))
		for i, c := range codes {
			p.raw[i] = uint32(c)
		}
		return p
	}
	w := uint(p.width)
	p.words = make([]uint64, (uint(len(codes))*w+63)/64)
	off := uint(0)
	for _, c := range codes {
		word, shift := off>>6, off&63
		p.words[word] |= uint64(uint32(c)) << shift
		if shift+w > 64 {
			p.words[word+1] |= uint64(uint32(c)) >> (64 - shift)
		}
		off += w
	}
	return p
}

// get extracts the code at row i.
func (p *packedCodes) get(i int) uint32 {
	if p.raw != nil {
		return p.raw[i]
	}
	w := uint(p.width)
	off := uint(i) * w
	word, shift := off>>6, off&63
	v := p.words[word] >> shift
	if shift+w > 64 {
		v |= p.words[word+1] << (64 - shift)
	}
	return uint32(v) & (1<<w - 1)
}

// appendRange appends the codes of rows [lo, hi) to dst.
func (p *packedCodes) appendRange(dst []uint32, lo, hi int) []uint32 {
	if p.raw != nil {
		return append(dst, p.raw[lo:hi]...)
	}
	w := uint(p.width)
	mask := uint32(1)<<w - 1
	off := uint(lo) * w
	for i := lo; i < hi; i++ {
		word, shift := off>>6, off&63
		v := p.words[word] >> shift
		if shift+w > 64 {
			v |= p.words[word+1] << (64 - shift)
		}
		dst = append(dst, uint32(v)&mask)
		off += w
	}
	return dst
}

// appendRange32 is appendRange into an int32 slice — the internal
// group-by kernels keep codes as int32 scratch.
func (p *packedCodes) appendRange32(dst []int32, lo, hi int) []int32 {
	if p.raw != nil {
		for _, v := range p.raw[lo:hi] {
			dst = append(dst, int32(v))
		}
		return dst
	}
	w := uint(p.width)
	mask := uint32(1)<<w - 1
	off := uint(lo) * w
	for i := lo; i < hi; i++ {
		word, shift := off>>6, off&63
		v := p.words[word] >> shift
		if shift+w > 64 {
			v |= p.words[word+1] << (64 - shift)
		}
		dst = append(dst, int32(uint32(v)&mask))
		off += w
	}
	return dst
}

// unpack rebuilds the plain code slice (the rare un-freeze path: a
// frozen column that is appended to again).
func (p *packedCodes) unpack() []int32 {
	out := make([]int32, 0, p.n)
	return p.appendRange32(out, 0, p.n)
}

func (p *packedCodes) memBytes() int64 {
	return int64(len(p.words))*8 + int64(len(p.raw))*4
}
