package table

import (
	"fmt"
	"testing"
)

// mixedTable builds a table whose key columns exercise both group-by
// paths: two dictionary strings and an int (packed uint64 key) plus a
// float (forces the varint byte-key fallback when included).
func mixedTable(t *testing.T, n int) *Table {
	t.Helper()
	sch := MustSchema(
		Field{Name: "A", Type: String},
		Field{Name: "B", Type: String},
		Field{Name: "N", Type: Int},
		Field{Name: "F", Type: Float},
	)
	b, err := NewBuilder(sch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b.Append(
			SV(fmt.Sprintf("a%d", i%7)),
			SV(fmt.Sprintf("b%d", (i*3)%5)),
			IV(int64(i%11-5)), // includes negative values
			FV(float64(i%4)),
		)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// naiveGroups is the reference grouping: first-appearance order keyed on
// rendered values.
func naiveGroups(t *testing.T, tbl *Table, names ...string) []Group {
	t.Helper()
	idx := make(map[string]int)
	var groups []Group
	for r := 0; r < tbl.NumRows(); r++ {
		key := ""
		var kv []Value
		for _, n := range names {
			v, err := tbl.Value(r, n)
			if err != nil {
				t.Fatal(err)
			}
			key += "\x00" + v.Str()
			kv = append(kv, v)
		}
		g, ok := idx[key]
		if !ok {
			g = len(groups)
			idx[key] = g
			groups = append(groups, Group{Key: kv})
		}
		groups[g].Rows = append(groups[g].Rows, r)
	}
	return groups
}

func sameGroups(a, b []Group) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Rows) != len(b[i].Rows) || a[i].KeyString() != b[i].KeyString() {
			return false
		}
		for j := range a[i].Rows {
			if a[i].Rows[j] != b[i].Rows[j] {
				return false
			}
		}
	}
	return true
}

// TestGroupByPackedAndFallbackAgree checks the packed uint64 path
// (string/int keys) and the byte-key fallback (float key present)
// against a naive reference grouping.
func TestGroupByPackedAndFallbackAgree(t *testing.T) {
	tbl := mixedTable(t, 500)
	cases := [][]string{
		{"A"},
		{"A", "B"},
		{"A", "B", "N"}, // packed, negative int codes
		{"A", "F"},      // fallback: float column has no code range
		{"A", "B", "N", "F"},
	}
	for _, names := range cases {
		got, err := tbl.GroupBy(names...)
		if err != nil {
			t.Fatalf("GroupBy(%v): %v", names, err)
		}
		want := naiveGroups(t, tbl, names...)
		if !sameGroups(got, want) {
			t.Errorf("GroupBy(%v): %d groups, want %d (or order/rows differ)", names, len(got), len(want))
		}
		n, err := tbl.NumGroups(names...)
		if err != nil || n != len(want) {
			t.Errorf("NumGroups(%v) = %d, %v; want %d", names, n, err, len(want))
		}
	}
}

func TestWithColumn(t *testing.T) {
	tbl := mixedTable(t, 10)
	col, err := tbl.MappedColumn("A", func(v Value) (string, error) {
		return "x" + v.Str(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := tbl.WithColumn("A", col)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Value(0, "A")
	if v.Str() != "xa0" {
		t.Errorf("swapped value = %q, want %q", v.Str(), "xa0")
	}
	// Other columns are shared, not copied.
	if out.ColumnAt(1) != tbl.ColumnAt(1) {
		t.Error("unswapped column was copied")
	}
	// The source table is untouched.
	v, _ = tbl.Value(0, "A")
	if v.Str() != "a0" {
		t.Errorf("source mutated: %q", v.Str())
	}

	if _, err := tbl.WithColumn("Missing", col); err == nil {
		t.Error("unknown column accepted")
	}
	short := NewColumn(String)
	if err := short.AppendText("only"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.WithColumn("A", short); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := tbl.WithColumn("A", nil); err == nil {
		t.Error("nil column accepted")
	}
}

// TestMappedColumnMemoizes: fn must run once per distinct value, not
// once per row, and the produced column must match MapColumn's output.
func TestMappedColumnMemoizes(t *testing.T) {
	tbl := mixedTable(t, 100) // column A has 7 distinct values
	calls := 0
	fn := func(v Value) (string, error) { calls++; return v.Str() + "!", nil }
	col, err := tbl.MappedColumn("A", fn)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Errorf("fn called %d times, want 7 (distinct values)", calls)
	}
	viaMap, err := tbl.MapColumn("A", func(v Value) (string, error) { return v.Str() + "!", nil })
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := viaMap.Column("A")
	for i := 0; i < tbl.NumRows(); i++ {
		if col.Value(i).Str() != ref.Value(i).Str() {
			t.Fatalf("row %d: %q != %q", i, col.Value(i).Str(), ref.Value(i).Str())
		}
	}
}

func TestDistinctAtLeast(t *testing.T) {
	tbl := mixedTable(t, 21) // A cycles through 7 values
	rows := make([]int, 21)
	for i := range rows {
		rows[i] = i
	}
	for p := 0; p <= 7; p++ {
		ok, err := tbl.DistinctAtLeast("A", rows, p)
		if err != nil || !ok {
			t.Errorf("DistinctAtLeast(A, p=%d) = %v, %v; want true", p, ok, err)
		}
	}
	ok, err := tbl.DistinctAtLeast("A", rows, 8)
	if err != nil || ok {
		t.Errorf("DistinctAtLeast(A, p=8) = %v, %v; want false", ok, err)
	}
	ok, err = tbl.DistinctAtLeast("A", nil, 1)
	if err != nil || ok {
		t.Errorf("DistinctAtLeast over no rows, p=1: %v, %v; want false", ok, err)
	}
	if _, err := tbl.DistinctAtLeast("Missing", rows, 2); err == nil {
		t.Error("unknown column accepted")
	}
	// Agreement with the exact count on row subsets.
	for _, sub := range [][]int{{0}, {0, 7, 14}, {0, 1, 2, 3}} {
		d, err := tbl.DistinctInRows("A", sub)
		if err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= d+1; p++ {
			ok, err := tbl.DistinctAtLeast("A", sub, p)
			if err != nil || ok != (d >= p) {
				t.Errorf("rows %v p=%d: atLeast=%v, exact=%d", sub, p, ok, d)
			}
		}
	}
}

func TestKeyString(t *testing.T) {
	g := Group{Key: []Value{SV("M"), SV("41076"), IV(3)}}
	if got := g.KeyString(); got != "M, 41076, 3" {
		t.Errorf("KeyString = %q", got)
	}
	if got := (Group{}).KeyString(); got != "" {
		t.Errorf("empty KeyString = %q", got)
	}
}
