package table

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// This file implements the group-statistics roll-up layer. Every
// p-sensitive k-anonymity verdict depends only on per-QI-group
// aggregates — the group's size and, per confidential attribute, the
// histogram of confidential codes — never on the rows themselves.
// GroupStats captures exactly those aggregates, and because full-domain
// generalization only ever merges QI-groups as the lattice is climbed,
// the aggregates at a more generalized node are a pure merge (Rollup)
// of the aggregates at any less generalized node: O(#groups) instead of
// O(#rows) per lattice node.

// CodeCount is one histogram entry: a confidential-attribute code and
// its number of occurrences inside a group. Count is always >= 1, so
// the distinct-value count of a group equals the histogram length.
type CodeCount struct {
	Code  int
	Count int
}

// CodeHist is the per-(group, confidential attribute) frequency
// histogram, sorted by ascending code so two histograms merge in a
// single linear pass.
type CodeHist []CodeCount

// Distinct returns the number of distinct codes in the histogram.
func (h CodeHist) Distinct() int { return len(h) }

// Total returns the summed counts (the group size, when the histogram
// covers a whole group).
func (h CodeHist) Total() int {
	n := 0
	for _, e := range h {
		n += e.Count
	}
	return n
}

// MaxCount returns the largest single-code count (0 for an empty
// histogram) — the numerator of the (p, alpha)-sensitivity test.
func (h CodeHist) MaxCount() int {
	max := 0
	for _, e := range h {
		if e.Count > max {
			max = e.Count
		}
	}
	return max
}

// mergeHists returns the entry-wise sum of two sorted histograms as a
// freshly allocated slice, leaving both inputs untouched (Rollup relies
// on that to share unmerged histograms with its source).
func mergeHists(a, b CodeHist) CodeHist {
	out := make(CodeHist, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Code < b[j].Code:
			out = append(out, a[i])
			i++
		case a[i].Code > b[j].Code:
			out = append(out, b[j])
			j++
		default:
			out = append(out, CodeCount{Code: a[i].Code, Count: a[i].Count + b[j].Count})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// GroupStat summarizes one QI-group without retaining its rows: the
// group's QI codes (one per key column, in the code space of the node
// the stats were computed at), its size, and one confidential-code
// histogram per confidential attribute. Rep is the index of the
// group's representative row — the first row that joined it — in the
// table the statistics were originally scanned from; merges (Rollup,
// Project, shard merging) keep the earliest constituent's Rep, which
// by first-appearance ordering is still the merged group's first row.
// It lets diagnostics recover a group's key values from one row lookup
// without re-grouping the table.
type GroupStat struct {
	Codes []int
	Size  int
	Rep   int
	Hists []CodeHist
}

// GroupStats is the aggregate form of a GroupBy: everything the
// p-sensitive k-anonymity family of checks needs, in O(#groups) memory.
// Groups appear in order of first appearance of their rows, matching
// GroupBy's ordering contract.
type GroupStats struct {
	// NumRows is the number of rows the groups cover.
	NumRows int
	// NumQI and NumConf record the key and confidential attribute
	// counts, so verdicts remain well-defined on empty tables.
	NumQI   int
	NumConf int
	// Groups holds one entry per QI-group, in first-appearance order.
	Groups []GroupStat
}

// NumGroups returns the number of QI-groups.
func (s *GroupStats) NumGroups() int { return len(s.Groups) }

// TuplesBelow counts the tuples in groups smaller than k — the number
// of tuples suppression would remove to reach k-anonymity.
func (s *GroupStats) TuplesBelow(k int) int {
	n := 0
	for i := range s.Groups {
		if s.Groups[i].Size < k {
			n += s.Groups[i].Size
		}
	}
	return n
}

// MinGroupSize returns the smallest group size (0 when empty).
func (s *GroupStats) MinGroupSize() int {
	if len(s.Groups) == 0 {
		return 0
	}
	min := s.Groups[0].Size
	for i := range s.Groups[1:] {
		if s.Groups[i+1].Size < min {
			min = s.Groups[i+1].Size
		}
	}
	return min
}

// SuppressBelow returns the statistics of the table after tuple
// suppression at threshold k: every group smaller than k is removed
// whole. Group values are shared with the receiver, which stays valid.
// This is exactly what table-level Suppress does to the groups —
// suppression removes whole groups, never parts of them — so verdicts
// computed on the result match verdicts on the suppressed table.
func (s *GroupStats) SuppressBelow(k int) *GroupStats {
	out := &GroupStats{NumQI: s.NumQI, NumConf: s.NumConf}
	out.Groups = make([]GroupStat, 0, len(s.Groups))
	for i := range s.Groups {
		if s.Groups[i].Size >= k {
			out.Groups = append(out.Groups, s.Groups[i])
			out.NumRows += s.Groups[i].Size
		}
	}
	return out
}

// Rollup maps the receiver's groups onto a more generalized lattice
// node's groups: maps[i] translates QI column i's codes from the
// receiver's level to the target level (nil meaning the level did not
// change), and groups whose translated keys collide are merged —
// sizes added, histograms summed. The result is byte-identical to
// computing GroupStats directly on the generalized table, including
// group order: ancestor groups inherit the first-appearance order of
// their earliest constituent, which is the first-appearance order of
// their rows.
func (s *GroupStats) Rollup(maps []*CodeMap) (*GroupStats, error) {
	if len(maps) != s.NumQI {
		return nil, fmt.Errorf("table: rollup got %d code maps for %d key columns", len(maps), s.NumQI)
	}
	// Pass 1: translate codes, assign each source group its target, add
	// sizes. Histograms wait for pass 2 so a target merged from many
	// sources accumulates its entries once instead of paying a fresh
	// sorted-merge allocation per source.
	out := &GroupStats{NumRows: s.NumRows, NumQI: s.NumQI, NumConf: s.NumConf}
	idx := make(map[string]int, groupHint(len(s.Groups)))
	target := make([]int, len(s.Groups))
	var members []int // sources per target group
	key := make([]byte, 0, 16*s.NumQI)
	mapped := make([]int, s.NumQI)
	for gi := range s.Groups {
		g := &s.Groups[gi]
		for i, c := range g.Codes {
			mc, ok := maps[i].Map(c)
			if !ok {
				return nil, fmt.Errorf("table: rollup: key column %d code %d has no translation", i, c)
			}
			mapped[i] = mc
		}
		key = key[:0]
		for _, c := range mapped {
			key = binary.AppendVarint(key, int64(c))
		}
		j, ok := idx[string(key)]
		if !ok {
			j = len(out.Groups)
			idx[string(key)] = j
			out.Groups = append(out.Groups, GroupStat{Codes: append([]int(nil), mapped...), Rep: g.Rep})
			members = append(members, 0)
		}
		target[gi] = j
		members[j]++
		out.Groups[j].Size += g.Size
	}
	mergeGroupHists(s.Groups, out, target, members)
	return out, nil
}

// histFoldCutoff is the number of merged source groups above which a
// target group's histograms are accumulated in maps instead of folded
// with repeated sorted merges: a two-way linear merge beats map
// operations for a handful of sources, while folding hundreds of
// sources (the coarse roll-ups Incognito's small QI subsets produce)
// would reallocate the growing histogram once per source.
const histFoldCutoff = 8

// mergeGroupHists fills in out.Groups[j].Hists given each source
// group's target assignment (target) and each target's source count
// (members). Single-source targets share the source's histograms —
// both sides stay immutable — so the common fine-grained roll-up pays
// nothing for groups that merely translate their codes.
func mergeGroupHists(src []GroupStat, out *GroupStats, target, members []int) {
	var histMaps [][]map[int]int
	for gi := range src {
		g := &src[gi]
		j := target[gi]
		switch {
		case members[j] == 1:
			out.Groups[j].Hists = g.Hists
		case members[j] <= histFoldCutoff:
			tg := &out.Groups[j]
			if tg.Hists == nil {
				tg.Hists = append([]CodeHist(nil), g.Hists...)
				continue
			}
			for a := range tg.Hists {
				// mergeHists allocates a fresh slice, so histograms
				// shared with the sources are never mutated.
				tg.Hists[a] = mergeHists(tg.Hists[a], g.Hists[a])
			}
		default:
			if histMaps == nil {
				histMaps = make([][]map[int]int, len(out.Groups))
			}
			hm := histMaps[j]
			if hm == nil {
				hm = make([]map[int]int, out.NumConf)
				for a := range hm {
					hm[a] = make(map[int]int, 8)
				}
				histMaps[j] = hm
			}
			for a, h := range g.Hists {
				for _, e := range h {
					hm[a][e.Code] += e.Count
				}
			}
		}
	}
	for j, hm := range histMaps {
		if hm == nil {
			continue
		}
		hists := make([]CodeHist, len(hm))
		for a := range hm {
			h := make(CodeHist, 0, len(hm[a]))
			for code, count := range hm[a] {
				h = append(h, CodeCount{Code: code, Count: count})
			}
			sort.Slice(h, func(x, y int) bool { return h[x].Code < h[y].Code })
			hists[a] = h
		}
		out.Groups[j].Hists = hists
	}
}

// Project returns the statistics of grouping by only the kept key
// columns (indices into the receiver's key columns, in the order the
// projection should keep them): groups whose kept codes coincide are
// merged — sizes added, histograms summed. Because the receiver's
// groups are in first-appearance order of their rows and a projected
// key first appears with the first row that carries it, the result is
// byte-identical to computing GroupStats directly with the kept
// columns as the key. This is the roll-up *across* QI subsets that
// Incognito's frequency sets rely on, complementing Rollup's roll-up
// along one subset's lattice.
func (s *GroupStats) Project(keep []int) (*GroupStats, error) {
	if len(keep) == 0 {
		return nil, fmt.Errorf("table: projection onto no key columns")
	}
	identity := len(keep) == s.NumQI
	for ki, i := range keep {
		if i < 0 || i >= s.NumQI {
			return nil, fmt.Errorf("table: projection index %d outside %d key columns", i, s.NumQI)
		}
		identity = identity && i == ki
	}
	if identity {
		// Keeping every column in place groups nothing further; the
		// receiver is immutable, so it can be shared as-is.
		return s, nil
	}
	// Same two-pass shape as Rollup: sizes and group assignment first,
	// then histograms — shared for single-source groups, accumulated in
	// maps for merged ones.
	out := &GroupStats{NumRows: s.NumRows, NumQI: len(keep), NumConf: s.NumConf}
	idx := make(map[string]int, groupHint(len(s.Groups)))
	target := make([]int, len(s.Groups))
	var members []int
	key := make([]byte, 0, 16*len(keep))
	for gi := range s.Groups {
		g := &s.Groups[gi]
		key = key[:0]
		for _, i := range keep {
			key = binary.AppendVarint(key, int64(g.Codes[i]))
		}
		j, ok := idx[string(key)]
		if !ok {
			j = len(out.Groups)
			idx[string(key)] = j
			codes := make([]int, len(keep))
			for ki, i := range keep {
				codes[ki] = g.Codes[i]
			}
			out.Groups = append(out.Groups, GroupStat{Codes: codes, Rep: g.Rep})
			members = append(members, 0)
		}
		target[gi] = j
		members[j]++
		out.Groups[j].Size += g.Size
	}
	mergeGroupHists(s.Groups, out, target, members)
	return out, nil
}

// GroupStats computes the roll-up aggregates of the table in one
// sharded, parallel pass: rows are split into `workers` contiguous
// shards, each shard groups its rows independently (through the same
// packed-uint64 fast path as GroupBy when the key columns admit it),
// and the shard results merge in row order — so the group order is
// identical to the serial scan at every worker count. confidential may
// be empty when only group sizes are needed (plain k-anonymity).
//
// When the key columns admit a packed plan and the confidential
// columns have dictionaries, each shard runs the chunked kernel:
// blocks of rows stream through arena-pooled key/id buffers into a
// flat per-group histogram slab, so the base scan of a lattice search
// allocates no per-row memory and reuses its scratch across nodes.
func (t *Table) GroupStats(qis, confidential []string, workers int) (*GroupStats, error) {
	return t.groupStats(qis, confidential, workers, false)
}

// GroupStatsRowwise is the pre-columnar reference implementation: the
// same sharding and merge, but each shard scans row-at-a-time through
// the Column interface into per-group histogram maps. It is retained
// as the differential oracle for the chunked kernel (the two must be
// byte-identical on every table) and as the baseline BenchmarkScale
// measures the packed substrate against.
func (t *Table) GroupStatsRowwise(qis, confidential []string, workers int) (*GroupStats, error) {
	return t.groupStats(qis, confidential, workers, true)
}

func (t *Table) groupStats(qis, confidential []string, workers int, rowwise bool) (*GroupStats, error) {
	if len(qis) == 0 {
		return nil, fmt.Errorf("table: group stats with no key columns")
	}
	cols := make([]Column, len(qis))
	for i, n := range qis {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	confCols := make([]Column, len(confidential))
	for i, n := range confidential {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		confCols[i] = c
	}
	// Resolve the packing plan once, before any shard goroutine starts;
	// CodeRange memoization is concurrency-safe but doing it here keeps
	// the shards allocation-free on the plan.
	plan, packed := packedPlan(cols)

	shard := buildStatShard
	if rowwise {
		shard = buildStatShardRowwise
	}
	if workers < 1 {
		workers = 1
	}
	if workers > t.nrows {
		workers = t.nrows
	}
	if workers <= 1 {
		return mergeStatShards([]*GroupStats{shard(cols, confCols, plan, packed, 0, t.nrows)}, len(qis), len(confidential)), nil
	}
	shards := make([]*GroupStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * t.nrows / workers
		hi := (w + 1) * t.nrows / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			shards[w] = shard(cols, confCols, plan, packed, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return mergeStatShards(shards, len(qis), len(confidential)), nil
}

// confPlan describes how the chunked kernel accumulates one
// confidential column's histograms: the column's rows project onto
// dense ids in [0, width) — extracted a block at a time by read — and
// code translates an id back to the value the per-row Code method
// reports, so emitted histograms match the rowwise scan exactly.
type confPlan struct {
	width int
	read  func(dst []int32, lo, hi int) []int32
	code  func(id int) int
}

// confPlanFor builds the dense-id projection of a confidential column,
// or reports false for column types without a dictionary.
func confPlanFor(c Column) (confPlan, bool) {
	switch col := c.(type) {
	case *stringColumn:
		return confPlan{
			width: len(col.dict),
			read:  col.codes32,
			code:  func(id int) int { return id },
		}, true
	case *floatColumn:
		return confPlan{
			width: len(col.dict),
			read: func(dst []int32, lo, hi int) []int32 {
				return append(dst, col.codes[lo:hi]...)
			},
			code: func(id int) int { return id },
		}, true
	case *intColumn:
		d := col.intDict()
		return confPlan{
			width: len(d.vals),
			read: func(dst []int32, lo, hi int) []int32 {
				for _, v := range col.vals[lo:hi] {
					dst = append(dst, d.id(v))
				}
				return dst
			},
			code: func(id int) int { return int(d.vals[id]) },
		}, true
	}
	return confPlan{}, false
}

// buildStatShard aggregates rows [lo, hi) into per-group stats, groups
// ordered by first appearance within the shard. It prefers the chunked
// kernel and falls back to the rowwise scan when the key columns have
// no packed plan or a confidential column has no dense projection.
func buildStatShard(cols, confCols []Column, plan packPlan, packed bool, lo, hi int) *GroupStats {
	if packed {
		if s, ok := buildStatShardChunked(cols, confCols, plan, lo, hi); ok {
			return s
		}
	}
	return buildStatShardRowwise(cols, confCols, plan, packed, lo, hi)
}

// buildStatShardChunked is the block-at-a-time kernel: per block it
// computes every row's packed key (blockKeys — bulk code extraction,
// no per-row interface calls), resolves keys to group ids through the
// arena's flat key table (or map, for wide key spaces), and bumps flat
// slab histogram counters at [group*stride + confOffset + id]. All
// scratch — key and id buffers, the key table, the slab — comes from
// the arena pool, so repeated scans (the lattice search's base scans)
// allocate only their O(#groups) output.
func buildStatShardChunked(cols, confCols []Column, plan packPlan, lo, hi int) (*GroupStats, bool) {
	confs := make([]confPlan, len(confCols))
	stride := 0
	for i, c := range confCols {
		cp, ok := confPlanFor(c)
		if !ok {
			return nil, false
		}
		confs[i] = cp
		stride += cp.width
	}
	if stride > maxDenseHistWidth {
		return nil, false
	}
	s := &GroupStats{NumRows: hi - lo, NumQI: len(cols), NumConf: len(confCols)}
	ar := getStatsArena()
	defer ar.release()
	dense := plan.span <= maxDenseKeySpan
	if dense {
		ar.ensureKeyTable(int(plan.span))
	}
	for blo := lo; blo < hi; blo += blockRows {
		bhi := blo + blockRows
		if bhi > hi {
			bhi = hi
		}
		n := bhi - blo
		plan.blockKeys(cols, blo, bhi, ar.keys, ar.scratch)
		keys := ar.keys[:n]
		if dense {
			for j, k := range keys {
				g := ar.keyTable[k]
				if g == 0 {
					g = int32(len(ar.gkeys)) + 1
					ar.keyTable[k] = g
					ar.gkeys = append(ar.gkeys, k)
					ar.sizes = append(ar.sizes, 0)
					ar.reps = append(ar.reps, int32(blo+j))
				}
				g--
				ar.gids[j] = g
				ar.sizes[g]++
			}
		} else {
			for j, k := range keys {
				g, ok := ar.idx[k]
				if !ok {
					g = int32(len(ar.gkeys))
					ar.idx[k] = g
					ar.gkeys = append(ar.gkeys, k)
					ar.sizes = append(ar.sizes, 0)
					ar.reps = append(ar.reps, int32(blo+j))
				}
				ar.gids[j] = g
				ar.sizes[g]++
			}
		}
		if stride > 0 {
			ar.growHist(len(ar.gkeys) * stride)
			off := 0
			for a := range confs {
				ar.ids = confs[a].read(ar.ids[:0], blo, bhi)
				for j, id := range ar.ids {
					ar.hist[int(ar.gids[j])*stride+off+int(id)]++
				}
				off += confs[a].width
			}
		}
	}
	if len(ar.gkeys) > 0 {
		// Left nil when the shard is empty, matching the rowwise kernel.
		s.Groups = make([]GroupStat, len(ar.gkeys))
	}
	for g, k := range ar.gkeys {
		gs := &s.Groups[g]
		gs.Codes = make([]int, len(cols))
		plan.codes(k, gs.Codes)
		gs.Size = int(ar.sizes[g])
		gs.Rep = int(ar.reps[g])
		gs.Hists = make([]CodeHist, len(confCols))
		off := 0
		for a := range confs {
			seg := ar.hist[g*stride+off : g*stride+off+confs[a].width]
			nz := 0
			for _, count := range seg {
				if count != 0 {
					nz++
				}
			}
			h := make(CodeHist, 0, nz)
			for id, count := range seg {
				if count != 0 {
					h = append(h, CodeCount{Code: confs[a].code(id), Count: int(count)})
				}
			}
			gs.Hists[a] = h
			off += confs[a].width
		}
	}
	return s, true
}

// buildStatShardRowwise aggregates rows [lo, hi) one row at a time
// through the Column interface — the pre-columnar reference kernel.
func buildStatShardRowwise(cols, confCols []Column, plan packPlan, packed bool, lo, hi int) *GroupStats {
	s := &GroupStats{NumRows: hi - lo, NumQI: len(cols), NumConf: len(confCols)}
	// histMaps[g][a] accumulates group g's histogram for confidential
	// attribute a; converted to sorted CodeHists once the shard is done.
	var histMaps [][]map[int]int
	newGroup := func(r int) int {
		codes := make([]int, len(cols))
		for i, c := range cols {
			codes[i] = c.Code(r)
		}
		s.Groups = append(s.Groups, GroupStat{Codes: codes, Rep: r})
		hm := make([]map[int]int, len(confCols))
		for a := range hm {
			hm[a] = make(map[int]int, 4)
		}
		histMaps = append(histMaps, hm)
		return len(s.Groups) - 1
	}
	account := func(g, r int) {
		s.Groups[g].Size++
		for a, c := range confCols {
			histMaps[g][a][c.Code(r)]++
		}
	}
	if packed {
		idx := make(map[uint64]int, groupHint(hi-lo))
		for r := lo; r < hi; r++ {
			k := plan.key(cols, r)
			g, ok := idx[k]
			if !ok {
				g = newGroup(r)
				idx[k] = g
			}
			account(g, r)
		}
	} else {
		idx := make(map[string]int, groupHint(hi-lo))
		key := make([]byte, 0, 16*len(cols))
		for r := lo; r < hi; r++ {
			key = key[:0]
			for _, c := range cols {
				key = binary.AppendVarint(key, int64(c.Code(r)))
			}
			g, ok := idx[string(key)]
			if !ok {
				g = newGroup(r)
				idx[string(key)] = g
			}
			account(g, r)
		}
	}
	for g := range s.Groups {
		s.Groups[g].Hists = make([]CodeHist, len(confCols))
		for a := range confCols {
			h := make(CodeHist, 0, len(histMaps[g][a]))
			for code, count := range histMaps[g][a] {
				h = append(h, CodeCount{Code: code, Count: count})
			}
			sort.Slice(h, func(i, j int) bool { return h[i].Code < h[j].Code })
			s.Groups[g].Hists[a] = h
		}
	}
	return s
}

// mergeStatShards concatenates shard-local stats in shard order,
// merging groups that span shard boundaries. Because shard w covers
// strictly earlier rows than shard w+1, first-appearance order over
// the merged result equals first-appearance order of the serial scan.
func mergeStatShards(shards []*GroupStats, numQI, numConf int) *GroupStats {
	if len(shards) == 1 && shards[0] != nil {
		return shards[0]
	}
	out := &GroupStats{NumQI: numQI, NumConf: numConf}
	idx := make(map[string]int)
	key := make([]byte, 0, 16*numQI)
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		out.NumRows += sh.NumRows
		for gi := range sh.Groups {
			g := &sh.Groups[gi]
			key = key[:0]
			for _, c := range g.Codes {
				key = binary.AppendVarint(key, int64(c))
			}
			if j, ok := idx[string(key)]; ok {
				tg := &out.Groups[j]
				tg.Size += g.Size
				for a := range tg.Hists {
					tg.Hists[a] = mergeHists(tg.Hists[a], g.Hists[a])
				}
				continue
			}
			idx[string(key)] = len(out.Groups)
			out.Groups = append(out.Groups, *g)
		}
	}
	return out
}
