package table

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Column is one typed column of a table. Implementations are append-only
// while a table is being built and immutable afterwards.
type Column interface {
	// Type reports the logical type of the column.
	Type() Type
	// Len reports the number of stored values.
	Len() int
	// Value returns the value at row i.
	Value(i int) Value
	// AppendValue appends a value, converting it to the column type.
	AppendValue(v Value) error
	// AppendText parses a textual cell and appends it.
	AppendText(s string) error
	// Gather returns a new column holding the values at the given rows.
	Gather(rows []int) Column
	// Code returns a small integer identifying the value at row i such
	// that two rows have the same code iff they hold equal values. Codes
	// are only comparable within one column.
	Code(i int) int
}

// CodeReader is an optional Column capability: bulk access to the
// dictionary codes of a row range. Hot loops (group-by kernels, code
// remapping) read codes a block at a time through it instead of paying
// a dynamic dispatch per row; frozen string columns serve it straight
// from their bit-packed stream.
type CodeReader interface {
	// Codes appends the codes of rows [lo, hi) to dst and returns it.
	Codes(dst []uint32, lo, hi int) []uint32
}

// codeRanger is an optional Column capability: columns that know an
// inclusive [lo, hi] range containing every code report it, which lets
// GroupBy and NumGroups pack multi-column keys into a single uint64
// instead of a varint byte string. ok must be false when the range is
// unknown or the column is empty.
type codeRanger interface {
	CodeRange() (lo, hi int, ok bool)
}

// memSizer is an optional Column capability: an estimate of the heap
// bytes the column retains. Used by cache telemetry to attribute
// memory to freshly built generalized columns.
type memSizer interface {
	memBytes() int64
}

// freezer is an optional Column capability: seal the column into its
// immutable read-optimized form (bit-packed codes). Builder.Build and
// the column-assembly paths call it; appending to a frozen column
// transparently unfreezes it first.
type freezer interface {
	freeze()
}

// MemBytes estimates the heap memory held by a column: backing slices
// plus dictionary storage, ignoring fixed struct overhead. Columns
// without an estimate report 0.
func MemBytes(c Column) int64 {
	if s, ok := c.(memSizer); ok {
		return s.memBytes()
	}
	return 0
}

// NewColumn returns an empty column of the given type.
func NewColumn(t Type) Column {
	switch t {
	case Int:
		return &intColumn{}
	case Float:
		return newFloatColumn()
	default:
		return newStringColumn()
	}
}

// stringColumn stores categorical data dictionary-encoded: the dict holds
// each distinct string once, codes index into it. Group-by and frequency
// counting operate on codes, never on string bytes.
//
// The column has two storage states. While being built, codes live in a
// plain []int32. freeze() — called by Builder.Build and every derived-
// column constructor — packs them to ceil(log2(len(dict))) bits per row
// (packedCodes), the form every read path serves from. Appending to a
// frozen column unfreezes it first; that round-trip is exact.
type stringColumn struct {
	dict  []string
	index map[string]int32
	codes []int32

	frozen bool
	packed packedCodes

	// dictShared marks dict/index as shared with at least one other
	// column (Gather shares them — the dictionary is append-only, so
	// sharing is safe for readers). It is set on both the lender and
	// the borrower, atomically, because parallel searches Gather the
	// same cached column concurrently. The first append of a value
	// absent from the dictionary clones both before writing, so no
	// sharer ever observes another's mutation.
	dictShared atomic.Bool

	// dictBorrowed marks this column a Gather borrower: memBytes
	// attributes dict/index to the original owner and skips them here,
	// so a shared dictionary is counted once across telemetry. Set only
	// during construction, cleared by the copy-on-write in intern.
	dictBorrowed bool
}

func newStringColumn() *stringColumn {
	return &stringColumn{index: make(map[string]int32)}
}

func (c *stringColumn) Type() Type { return String }

func (c *stringColumn) Len() int {
	if c.frozen {
		return c.packed.n
	}
	return len(c.codes)
}

func (c *stringColumn) Value(i int) Value { return SV(c.dict[c.Code(i)]) }

func (c *stringColumn) Code(i int) int {
	if c.frozen {
		return int(c.packed.get(i))
	}
	return int(c.codes[i])
}

// Codes implements CodeReader.
func (c *stringColumn) Codes(dst []uint32, lo, hi int) []uint32 {
	if c.frozen {
		return c.packed.appendRange(dst, lo, hi)
	}
	for _, code := range c.codes[lo:hi] {
		dst = append(dst, uint32(code))
	}
	return dst
}

// codes32 is Codes into int32 scratch, for the internal kernels.
func (c *stringColumn) codes32(dst []int32, lo, hi int) []int32 {
	if c.frozen {
		return c.packed.appendRange32(dst, lo, hi)
	}
	return append(dst, c.codes[lo:hi]...)
}

// Cardinality reports the number of distinct values in the dictionary.
// For a column whose dictionary is shared with a parent (Gather), this
// may exceed the number of distinct values actually present in rows.
func (c *stringColumn) Cardinality() int { return len(c.dict) }

func (c *stringColumn) memBytes() int64 {
	n := int64(len(c.codes))*4 + c.packed.memBytes()
	if c.dictBorrowed {
		// A borrowed dictionary is attributed to the column it was
		// gathered from, so shared dictionaries are counted once.
		return n
	}
	for _, s := range c.dict {
		// string bytes + header, counted twice: once in dict, once as
		// an index key.
		n += 2 * (int64(len(s)) + 16)
	}
	return n
}

// CodeRange: dictionary codes are dense in [0, len(dict)).
func (c *stringColumn) CodeRange() (int, int, bool) {
	if len(c.dict) == 0 {
		return 0, 0, false
	}
	return 0, len(c.dict) - 1, true
}

func (c *stringColumn) freeze() {
	if c.frozen {
		return
	}
	c.packed = packCodes(c.codes, len(c.dict))
	c.codes = nil
	c.frozen = true
}

func (c *stringColumn) unfreeze() {
	c.codes = c.packed.unpack()
	c.packed = packedCodes{}
	c.frozen = false
}

// intern returns the code for s, adding it to the dictionary if absent.
func (c *stringColumn) intern(s string) int32 {
	code, ok := c.index[s]
	if ok {
		return code
	}
	if c.dictShared.Load() {
		// Copy-on-write: never grow a shared dictionary in place — two
		// sharers appending would race on the backing array, and a
		// sharer interning through the common index could find a code
		// beyond its own dict's length.
		c.dict = append([]string(nil), c.dict...)
		index := make(map[string]int32, len(c.index)+1)
		for k, v := range c.index {
			index[k] = v
		}
		c.index = index
		c.dictShared.Store(false)
		c.dictBorrowed = false
	}
	code = int32(len(c.dict))
	c.dict = append(c.dict, s)
	c.index[s] = code
	return code
}

func (c *stringColumn) append(s string) {
	if c.frozen {
		c.unfreeze()
	}
	c.codes = append(c.codes, c.intern(s))
}

func (c *stringColumn) AppendValue(v Value) error {
	c.append(v.Str())
	return nil
}

func (c *stringColumn) AppendText(s string) error {
	c.append(s)
	return nil
}

// Gather shares the dictionary with the source (it is append-only) and
// copies only the selected rows' codes, so a gather costs O(rows)
// regardless of dictionary size. The gathered dictionary may contain
// values no selected row holds; code semantics are unaffected.
func (c *stringColumn) Gather(rows []int) Column {
	// Sharing is copy-on-write in both directions: the borrower must
	// not grow the lender's dictionary, and the lender must not grow
	// the now-shared dictionary in place underneath the borrower — a
	// borrower interning a value the lender added later would find a
	// code beyond its own dictionary. Marking the lender is an atomic
	// store because concurrent searches Gather shared cached columns.
	c.dictShared.Store(true)
	out := &stringColumn{dict: c.dict, index: c.index, dictBorrowed: true}
	out.dictShared.Store(true)
	out.codes = make([]int32, 0, len(rows))
	if c.frozen {
		for _, r := range rows {
			out.codes = append(out.codes, int32(c.packed.get(r)))
		}
	} else {
		for _, r := range rows {
			out.codes = append(out.codes, c.codes[r])
		}
	}
	out.freeze()
	return out
}

type intColumn struct {
	vals []int64

	// Observed value range, computed lazily on the first CodeRange call.
	// sync.Once makes the computation safe under concurrent group-bys of
	// a shared table; columns are immutable once the table is built.
	rangeOnce sync.Once
	lo, hi    int64

	// Distinct-value dictionary, computed lazily on first use by the
	// chunked group-stats kernel and code remapping (same immutability
	// argument as rangeOnce).
	dictOnce sync.Once
	dict     *intDict
}

// intDict enumerates an int column's distinct values in ascending
// order; a value's id is its rank. Lookup is a flat array when the
// value span is modest, a map otherwise.
type intDict struct {
	vals  []int64
	lo    int64
	dense []int32 // value-lo -> id+1 (0 = absent), when span fits
	byVal map[int64]int32
}

// intDictMaxSpan caps the dense lookup (and presence-scan) span; wider
// ranges fall back to map-based construction and lookup.
const intDictMaxSpan = 1 << 20

func (c *intColumn) intDict() *intDict {
	c.dictOnce.Do(func() {
		d := &intDict{}
		if len(c.vals) == 0 {
			c.dict = d
			return
		}
		lo, hi, _ := c.CodeRange()
		// The span is computed unsigned: signed subtraction overflows for
		// wide value ranges (lo near MinInt64, hi near MaxInt64), and a
		// wrapped span would slip past the cap into the dense path and
		// panic on make or on the presence scan. uint64(hi)-uint64(lo) is
		// the exact difference for any int64 pair; the +1 wraps to 0 only
		// for the full 2^64-wide domain, which the != 0 guard routes to
		// the map path along with every other over-cap span.
		uspan := uint64(hi) - uint64(lo) + 1
		if uspan != 0 && uspan <= intDictMaxSpan {
			d.lo = int64(lo)
			d.dense = make([]int32, uspan)
			for _, v := range c.vals {
				d.dense[v-d.lo] = 1
			}
			for i, present := range d.dense {
				if present != 0 {
					d.dense[i] = int32(len(d.vals)) + 1
					d.vals = append(d.vals, d.lo+int64(i))
				}
			}
		} else {
			d.byVal = make(map[int64]int32)
			for _, v := range c.vals {
				if _, ok := d.byVal[v]; !ok {
					d.byVal[v] = 0
				}
			}
			d.vals = make([]int64, 0, len(d.byVal))
			for v := range d.byVal {
				d.vals = append(d.vals, v)
			}
			sort.Slice(d.vals, func(i, j int) bool { return d.vals[i] < d.vals[j] })
			for i, v := range d.vals {
				d.byVal[v] = int32(i)
			}
		}
		c.dict = d
	})
	return c.dict
}

// id returns the rank of v, which must be present in the column.
func (d *intDict) id(v int64) int32 {
	if d.dense != nil {
		return d.dense[v-d.lo] - 1
	}
	return d.byVal[v]
}

func (c *intColumn) memBytes() int64 { return int64(len(c.vals)) * 8 }

func (c *intColumn) Type() Type        { return Int }
func (c *intColumn) Len() int          { return len(c.vals) }
func (c *intColumn) Value(i int) Value { return IV(c.vals[i]) }

func (c *intColumn) Code(i int) int { return int(c.vals[i]) }

// CodeRange reports the observed [min, max] value range.
func (c *intColumn) CodeRange() (int, int, bool) {
	if len(c.vals) == 0 {
		return 0, 0, false
	}
	c.rangeOnce.Do(func() {
		c.lo, c.hi = c.vals[0], c.vals[0]
		for _, v := range c.vals[1:] {
			if v < c.lo {
				c.lo = v
			}
			if v > c.hi {
				c.hi = v
			}
		}
	})
	return int(c.lo), int(c.hi), true
}

// invalidate discards the lazily computed range and dictionary memos.
// Every append must call it: a CodeRange or intDict computed before the
// column grew would otherwise keep serving stale values, and the packed
// group-by plans and code remaps built on them would misclassify (or
// panic on) appended rows. Appends are single-threaded by the Column
// contract — build phase or ledger mutation — so replacing the
// sync.Once values with fresh ones is safe.
func (c *intColumn) invalidate() {
	c.rangeOnce = sync.Once{}
	c.dictOnce = sync.Once{}
	c.dict = nil
}

func (c *intColumn) AppendValue(v Value) error {
	if v.Kind() == String {
		return c.AppendText(v.Str())
	}
	c.invalidate()
	c.vals = append(c.vals, v.Int())
	return nil
}

func (c *intColumn) AppendText(s string) error {
	n, err := strconv.ParseInt(trimSpace(s), 10, 64)
	if err != nil {
		return fmt.Errorf("table: cannot parse %q as int: %w", s, err)
	}
	c.invalidate()
	c.vals = append(c.vals, n)
	return nil
}

func (c *intColumn) Gather(rows []int) Column {
	out := &intColumn{vals: make([]int64, 0, len(rows))}
	for _, r := range rows {
		out.vals = append(out.vals, c.vals[r])
	}
	return out
}

// floatColumn stores floats dictionary-encoded like strings: vals keeps
// every row's payload (so Value round-trips bit-exactly, -0.0
// included), codes identify rows with equal values via a distinct-value
// dictionary. The former code scheme — int64(v*1e6) — collided distinct
// small values and overflowed on large magnitudes; dictionary codes
// cannot.
type floatColumn struct {
	vals  []float64
	dict  []float64
	index map[float64]int32
	codes []int32
	// nanCode interns NaN, which map lookups can't (NaN != NaN): every
	// NaN row shares one code, matching the numeric-comparison notion of
	// a single missing-value class the old scheme had.
	nanCode int32
}

func newFloatColumn() *floatColumn { return &floatColumn{nanCode: -1} }

func (c *floatColumn) memBytes() int64 {
	return int64(len(c.vals))*8 + int64(len(c.dict))*8 + int64(len(c.codes))*4
}

func (c *floatColumn) Type() Type        { return Float }
func (c *floatColumn) Len() int          { return len(c.vals) }
func (c *floatColumn) Value(i int) Value { return FV(c.vals[i]) }

func (c *floatColumn) Code(i int) int { return int(c.codes[i]) }

// CodeRange: dictionary codes are dense in [0, len(dict)), which admits
// float confidential attributes to the packed group-by key path.
func (c *floatColumn) CodeRange() (int, int, bool) {
	if len(c.dict) == 0 {
		return 0, 0, false
	}
	return 0, len(c.dict) - 1, true
}

func (c *floatColumn) append(f float64) {
	if c.index == nil {
		c.index = make(map[float64]int32)
	}
	var code int32
	if math.IsNaN(f) {
		if c.nanCode < 0 {
			c.nanCode = int32(len(c.dict))
			c.dict = append(c.dict, f)
		}
		code = c.nanCode
	} else {
		var ok bool
		code, ok = c.index[f]
		if !ok {
			code = int32(len(c.dict))
			c.dict = append(c.dict, f)
			c.index[f] = code
		}
	}
	c.vals = append(c.vals, f)
	c.codes = append(c.codes, code)
}

func (c *floatColumn) AppendValue(v Value) error {
	if v.Kind() == String {
		return c.AppendText(v.Str())
	}
	c.append(v.Float())
	return nil
}

func (c *floatColumn) AppendText(s string) error {
	f, err := strconv.ParseFloat(trimSpace(s), 64)
	if err != nil {
		return fmt.Errorf("table: cannot parse %q as float: %w", s, err)
	}
	c.append(f)
	return nil
}

func (c *floatColumn) Gather(rows []int) Column {
	out := newFloatColumn()
	for _, r := range rows {
		out.append(c.vals[r])
	}
	return out
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t') {
		end--
	}
	return s[start:end]
}
