package table

import (
	"fmt"
	"strconv"
	"sync"
)

// Column is one typed column of a table. Implementations are append-only
// while a table is being built and immutable afterwards.
type Column interface {
	// Type reports the logical type of the column.
	Type() Type
	// Len reports the number of stored values.
	Len() int
	// Value returns the value at row i.
	Value(i int) Value
	// AppendValue appends a value, converting it to the column type.
	AppendValue(v Value) error
	// AppendText parses a textual cell and appends it.
	AppendText(s string) error
	// Gather returns a new column holding the values at the given rows.
	Gather(rows []int) Column
	// Code returns a small integer identifying the value at row i such
	// that two rows have the same code iff they hold equal values. Codes
	// are only comparable within one column.
	Code(i int) int
}

// codeRanger is an optional Column capability: columns that know an
// inclusive [lo, hi] range containing every code report it, which lets
// GroupBy and NumGroups pack multi-column keys into a single uint64
// instead of a varint byte string. ok must be false when the range is
// unknown or the column is empty.
type codeRanger interface {
	CodeRange() (lo, hi int, ok bool)
}

// memSizer is an optional Column capability: an estimate of the heap
// bytes the column retains. Used by cache telemetry to attribute
// memory to freshly built generalized columns.
type memSizer interface {
	memBytes() int64
}

// MemBytes estimates the heap memory held by a column: backing slices
// plus dictionary storage, ignoring fixed struct overhead. Columns
// without an estimate report 0.
func MemBytes(c Column) int64 {
	if s, ok := c.(memSizer); ok {
		return s.memBytes()
	}
	return 0
}

// NewColumn returns an empty column of the given type.
func NewColumn(t Type) Column {
	switch t {
	case Int:
		return &intColumn{}
	case Float:
		return &floatColumn{}
	default:
		return newStringColumn()
	}
}

// stringColumn stores categorical data dictionary-encoded: the dict holds
// each distinct string once, codes index into it. Group-by and frequency
// counting operate on codes, never on string bytes.
type stringColumn struct {
	dict  []string
	index map[string]int32
	codes []int32
}

func newStringColumn() *stringColumn {
	return &stringColumn{index: make(map[string]int32)}
}

func (c *stringColumn) Type() Type { return String }
func (c *stringColumn) Len() int   { return len(c.codes) }

func (c *stringColumn) Value(i int) Value { return SV(c.dict[c.codes[i]]) }

func (c *stringColumn) Code(i int) int { return int(c.codes[i]) }

// Cardinality reports the number of distinct values ever appended.
func (c *stringColumn) Cardinality() int { return len(c.dict) }

func (c *stringColumn) memBytes() int64 {
	n := int64(len(c.codes)) * 4
	for _, s := range c.dict {
		// string bytes + header, counted twice: once in dict, once as
		// an index key.
		n += 2 * (int64(len(s)) + 16)
	}
	return n
}

// CodeRange: dictionary codes are dense in [0, len(dict)).
func (c *stringColumn) CodeRange() (int, int, bool) {
	if len(c.dict) == 0 {
		return 0, 0, false
	}
	return 0, len(c.dict) - 1, true
}

func (c *stringColumn) append(s string) {
	code, ok := c.index[s]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, s)
		c.index[s] = code
	}
	c.codes = append(c.codes, code)
}

func (c *stringColumn) AppendValue(v Value) error {
	c.append(v.Str())
	return nil
}

func (c *stringColumn) AppendText(s string) error {
	c.append(s)
	return nil
}

func (c *stringColumn) Gather(rows []int) Column {
	out := newStringColumn()
	for _, r := range rows {
		out.append(c.dict[c.codes[r]])
	}
	return out
}

type intColumn struct {
	vals []int64

	// Observed value range, computed lazily on the first CodeRange call.
	// sync.Once makes the computation safe under concurrent group-bys of
	// a shared table; columns are immutable once the table is built.
	rangeOnce sync.Once
	lo, hi    int64
}

func (c *intColumn) memBytes() int64 { return int64(len(c.vals)) * 8 }

func (c *intColumn) Type() Type        { return Int }
func (c *intColumn) Len() int          { return len(c.vals) }
func (c *intColumn) Value(i int) Value { return IV(c.vals[i]) }

func (c *intColumn) Code(i int) int { return int(c.vals[i]) }

// CodeRange reports the observed [min, max] value range.
func (c *intColumn) CodeRange() (int, int, bool) {
	if len(c.vals) == 0 {
		return 0, 0, false
	}
	c.rangeOnce.Do(func() {
		c.lo, c.hi = c.vals[0], c.vals[0]
		for _, v := range c.vals[1:] {
			if v < c.lo {
				c.lo = v
			}
			if v > c.hi {
				c.hi = v
			}
		}
	})
	return int(c.lo), int(c.hi), true
}

func (c *intColumn) AppendValue(v Value) error {
	if v.Kind() == String {
		return c.AppendText(v.Str())
	}
	c.vals = append(c.vals, v.Int())
	return nil
}

func (c *intColumn) AppendText(s string) error {
	n, err := strconv.ParseInt(trimSpace(s), 10, 64)
	if err != nil {
		return fmt.Errorf("table: cannot parse %q as int: %w", s, err)
	}
	c.vals = append(c.vals, n)
	return nil
}

func (c *intColumn) Gather(rows []int) Column {
	out := &intColumn{vals: make([]int64, 0, len(rows))}
	for _, r := range rows {
		out.vals = append(out.vals, c.vals[r])
	}
	return out
}

type floatColumn struct {
	vals []float64
}

func (c *floatColumn) memBytes() int64 { return int64(len(c.vals)) * 8 }

func (c *floatColumn) Type() Type        { return Float }
func (c *floatColumn) Len() int          { return len(c.vals) }
func (c *floatColumn) Value(i int) Value { return FV(c.vals[i]) }

func (c *floatColumn) Code(i int) int { return int(int64(c.vals[i] * 1e6)) }

func (c *floatColumn) AppendValue(v Value) error {
	if v.Kind() == String {
		return c.AppendText(v.Str())
	}
	c.vals = append(c.vals, v.Float())
	return nil
}

func (c *floatColumn) AppendText(s string) error {
	f, err := strconv.ParseFloat(trimSpace(s), 64)
	if err != nil {
		return fmt.Errorf("table: cannot parse %q as float: %w", s, err)
	}
	c.vals = append(c.vals, f)
	return nil
}

func (c *floatColumn) Gather(rows []int) Column {
	out := &floatColumn{vals: make([]float64, 0, len(rows))}
	for _, r := range rows {
		out.vals = append(out.vals, c.vals[r])
	}
	return out
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t') {
		end--
	}
	return s[start:end]
}
