package table

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file is the delta-maintenance layer of the roll-up substrate:
// Ledger turns the immutable Table into an append/retire row store with
// stable row ids, and StatsDelta applies those row-level changes to an
// existing GroupStats in place — histogram add/subtract per touched
// group — so a streaming publisher re-verdicts in O(changed groups)
// instead of re-scanning rows (DESIGN.md §14).

// Ledger is a mutable row store over a table: rows are appended at the
// end and retired by id, and ids are stable — the i-th row ever stored
// (the base table's rows first) keeps id i forever, even after being
// retired. Retiring never removes data: retired rows stay addressable
// (their codes are needed to subtract them from maintained statistics)
// but are excluded from Snapshot and from the live count.
//
// The ledger owns its table: NewLedger deep-copies the input so appends
// never mutate columns the caller may share with other tables. Appends
// go through the columns' own append paths, so frozen (bit-packed)
// string columns transparently unfreeze and re-intern — new values get
// fresh dictionary codes, existing codes never move.
//
// A Ledger is not safe for concurrent mutation; one writer at a time,
// exactly like a Builder.
type Ledger struct {
	tab      *Table
	retired  []bool
	nRetired int
}

// NewLedger builds a ledger seeded with the table's rows (ids 0..n-1,
// all live). The table is deep-copied.
func NewLedger(t *Table) *Ledger {
	return &Ledger{tab: t.Clone(), retired: make([]bool, t.NumRows())}
}

// Table returns the backing table, which holds every row ever appended
// — retired ones included. Callers that need only live rows use
// Snapshot.
func (l *Ledger) Table() *Table { return l.tab }

// NumRows reports the total number of row ids (live + retired).
func (l *Ledger) NumRows() int { return l.tab.nrows }

// NumLive reports the number of live rows.
func (l *Ledger) NumLive() int { return l.tab.nrows - l.nRetired }

// Live reports whether id names a live row.
func (l *Ledger) Live(id int) bool {
	return id >= 0 && id < len(l.retired) && !l.retired[id]
}

// AppendText appends one row of textual cells in schema order and
// returns its id. On any cell error the ledger is left unchanged:
// columns already grown are truncated back, so the table can never end
// up with ragged column lengths mid-row.
func (l *Ledger) AppendText(cells []string) (int, error) {
	if len(cells) != len(l.tab.cols) {
		return 0, fmt.Errorf("table: ledger append has %d cells for %d columns", len(cells), len(l.tab.cols))
	}
	n := l.tab.nrows
	for i, c := range l.tab.cols {
		if err := c.AppendText(cells[i]); err != nil {
			for _, grown := range l.tab.cols[:i] {
				truncateColumn(grown, n)
			}
			return 0, fmt.Errorf("table: ledger append column %q: %w", l.tab.schema.Fields[i].Name, err)
		}
	}
	l.tab.nrows++
	l.retired = append(l.retired, false)
	return n, nil
}

// Retire marks a row id retired. Retiring an unknown or already-retired
// id is an error — the caller's statistics would silently drift if it
// were ignored.
func (l *Ledger) Retire(id int) error {
	if id < 0 || id >= len(l.retired) {
		return fmt.Errorf("table: ledger retire: %w: %d", ErrRowRange, id)
	}
	if l.retired[id] {
		return fmt.Errorf("table: ledger retire: row %d is already retired", id)
	}
	l.retired[id] = true
	l.nRetired++
	return nil
}

// Snapshot materializes the live rows, in id order, as an immutable
// table. This is the O(live rows) step incremental publishing pays only
// when a masked table must actually be produced or a cold search run;
// the per-batch verdict path never calls it.
func (l *Ledger) Snapshot() (*Table, error) {
	rows := make([]int, 0, l.NumLive())
	for id, gone := range l.retired {
		if !gone {
			rows = append(rows, id)
		}
	}
	return l.tab.Gather(rows)
}

// truncateColumn pops a column back to n values after a failed
// multi-column append. Dictionary entries interned by the rolled-back
// cells may linger; that is within column semantics (a dictionary may
// hold values no row carries, as after a shared-dict Gather).
func truncateColumn(c Column, n int) {
	switch col := c.(type) {
	case *stringColumn:
		// The append path unfreezes, so codes is the live storage here.
		col.codes = col.codes[:n]
	case *intColumn:
		col.vals = col.vals[:n]
		col.invalidate()
	case *floatColumn:
		col.vals = col.vals[:n]
		col.codes = col.codes[:n]
	}
}

// StatsDelta maintains a GroupStats under row-level appends and
// retires. Rows are presented as code vectors — the key codes in the
// statistics' own code space plus the confidential codes — and the
// delta locates the row's group by the same varint key Rollup and the
// scan kernels use, then adjusts its size and histograms in place.
// The set of groups touched since the last Reset is returned by
// Changed, which is what lets a policy re-verdict in O(changed groups).
//
// Two invariants the delta preserves:
//
//   - Histograms stay sorted by ascending code with every Count >= 1
//     (zero-count entries are removed), so Distinct/Total/MaxCount and
//     the linear merges keep working unchanged.
//   - Histograms possibly shared with other statistics (SuppressBelow,
//     Rollup and the shard merge all share histograms structurally) are
//     copied before the first mutation. Stats marks every histogram
//     shared, because the returned pointer may be rolled up or seeded
//     elsewhere; the delta then copies again before its next write.
//
// A group whose size returns to zero is kept as a tombstone: its key
// stays claimed, so a later re-append finds it again. Tombstones are
// invisible to verdicts — the publish path always evaluates the
// suppressed view (SuppressBelow with k >= 2 removes them with the
// other sub-k groups) and they contribute nothing to TuplesBelow or to
// histogram totals.
type StatsDelta struct {
	stats   *GroupStats
	idx     map[string]int
	owned   []bool
	changed map[int]struct{}
	keyBuf  []byte
}

// NewStatsDelta wraps existing statistics for in-place maintenance.
// The statistics are taken over: the caller must not mutate them (or
// scan-derived twins of them) behind the delta's back, though reading
// through Stats stays valid at any time.
func NewStatsDelta(s *GroupStats) (*StatsDelta, error) {
	if s == nil {
		return nil, fmt.Errorf("table: stats delta over nil statistics")
	}
	d := &StatsDelta{
		stats:   s,
		idx:     make(map[string]int, groupHint(len(s.Groups))),
		owned:   make([]bool, len(s.Groups)),
		changed: make(map[int]struct{}),
		keyBuf:  make([]byte, 0, 16*s.NumQI),
	}
	for gi := range s.Groups {
		k := string(d.key(s.Groups[gi].Codes))
		if prev, dup := d.idx[k]; dup {
			return nil, fmt.Errorf("table: stats delta: groups %d and %d share a key", prev, gi)
		}
		d.idx[k] = gi
	}
	return d, nil
}

// Stats returns the maintained statistics. Because the caller may share
// the returned groups onward (roll them up, seed a store with them),
// every histogram is treated as shared from here on: the delta copies
// any histogram again before its next mutation of it.
func (d *StatsDelta) Stats() *GroupStats {
	for i := range d.owned {
		d.owned[i] = false
	}
	return d.stats
}

// NumChanged reports the number of groups touched since the last Reset.
func (d *StatsDelta) NumChanged() int { return len(d.changed) }

// Changed returns the indices (into Stats().Groups, ascending) of the
// groups touched since the last Reset.
func (d *StatsDelta) Changed() []int {
	out := make([]int, 0, len(d.changed))
	for g := range d.changed {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// Reset clears the changed-group set, typically right after a verdict
// consumed it.
func (d *StatsDelta) Reset() {
	for g := range d.changed {
		delete(d.changed, g)
	}
}

// Append adds one row: key codes in the statistics' code space,
// confidential codes, and the row's id (recorded as Rep when the row
// founds a new group). Returns the touched group's index.
func (d *StatsDelta) Append(keyCodes, confCodes []int, rowID int) (int, error) {
	if err := d.checkShape(keyCodes, confCodes); err != nil {
		return 0, err
	}
	k := string(d.key(keyCodes))
	g, ok := d.idx[k]
	if !ok {
		g = len(d.stats.Groups)
		d.stats.Groups = append(d.stats.Groups, GroupStat{
			Codes: append([]int(nil), keyCodes...),
			Rep:   rowID,
			Hists: make([]CodeHist, d.stats.NumConf),
		})
		d.owned = append(d.owned, true)
		d.idx[k] = g
	}
	d.own(g)
	gr := &d.stats.Groups[g]
	gr.Size++
	for a, c := range confCodes {
		gr.Hists[a] = histAdd(gr.Hists[a], c)
	}
	d.stats.NumRows++
	d.changed[g] = struct{}{}
	return g, nil
}

// Retire subtracts one row. The row's group must exist and its
// histograms must cover the confidential codes — anything else means
// the caller is retiring a row the statistics never absorbed, which is
// an error rather than a silent drift.
func (d *StatsDelta) Retire(keyCodes, confCodes []int) (int, error) {
	if err := d.checkShape(keyCodes, confCodes); err != nil {
		return 0, err
	}
	g, ok := d.idx[string(d.key(keyCodes))]
	if !ok {
		return 0, fmt.Errorf("table: stats delta: retire of a row in no known group (key codes %v)", keyCodes)
	}
	gr := &d.stats.Groups[g]
	if gr.Size < 1 {
		return 0, fmt.Errorf("table: stats delta: retire from empty group %d", g)
	}
	d.own(g)
	gr = &d.stats.Groups[g]
	for a, c := range confCodes {
		h, err := histSub(gr.Hists[a], c)
		if err != nil {
			return 0, fmt.Errorf("table: stats delta: group %d attribute %d: %w", g, a, err)
		}
		gr.Hists[a] = h
	}
	gr.Size--
	d.stats.NumRows--
	d.changed[g] = struct{}{}
	return g, nil
}

func (d *StatsDelta) checkShape(keyCodes, confCodes []int) error {
	if len(keyCodes) != d.stats.NumQI {
		return fmt.Errorf("table: stats delta: %d key codes for %d key columns", len(keyCodes), d.stats.NumQI)
	}
	if len(confCodes) != d.stats.NumConf {
		return fmt.Errorf("table: stats delta: %d confidential codes for %d attributes", len(confCodes), d.stats.NumConf)
	}
	return nil
}

// key renders codes as the varint byte key shared with Rollup and the
// fallback scan kernel.
func (d *StatsDelta) key(codes []int) []byte {
	d.keyBuf = d.keyBuf[:0]
	for _, c := range codes {
		d.keyBuf = binary.AppendVarint(d.keyBuf, int64(c))
	}
	return d.keyBuf
}

// own makes group g's histograms privately writable (copy-on-write).
func (d *StatsDelta) own(g int) {
	if d.owned[g] {
		return
	}
	gr := &d.stats.Groups[g]
	hists := make([]CodeHist, len(gr.Hists))
	for a, h := range gr.Hists {
		hists[a] = append(CodeHist(nil), h...)
	}
	gr.Hists = hists
	d.owned[g] = true
}

// histAdd increments code's count in a sorted histogram, inserting the
// entry if absent.
func histAdd(h CodeHist, code int) CodeHist {
	i := sort.Search(len(h), func(i int) bool { return h[i].Code >= code })
	if i < len(h) && h[i].Code == code {
		h[i].Count++
		return h
	}
	h = append(h, CodeCount{})
	copy(h[i+1:], h[i:])
	h[i] = CodeCount{Code: code, Count: 1}
	return h
}

// histSub decrements code's count, removing the entry at zero; an
// absent code is an error.
func histSub(h CodeHist, code int) (CodeHist, error) {
	i := sort.Search(len(h), func(i int) bool { return h[i].Code >= code })
	if i >= len(h) || h[i].Code != code {
		return nil, fmt.Errorf("confidential code %d is not in the histogram", code)
	}
	h[i].Count--
	if h[i].Count == 0 {
		h = append(h[:i], h[i+1:]...)
	}
	return h, nil
}
