package table

import (
	"fmt"
	"math"
)

// unmappedCode marks dense CodeMap slots no source code was observed
// for. Columns never produce it as a real code (it would require an
// int64 column holding math.MinInt, which Code would truncate anyway).
const unmappedCode = math.MinInt

// denseCodeMapSpan bounds the source code range a CodeMap will cover
// with a flat slice; wider ranges fall back to a hash map so sparse
// numeric columns do not explode memory.
const denseCodeMapSpan = 1 << 20

// CodeMap translates the codes of one column into the codes of a
// row-aligned column over the same rows. The roll-up layer uses it to
// move a QI-group key from one hierarchy level to a more generalized
// one without rescanning rows: full-domain recoding guarantees the
// translation is a function (rows that agree at the finer level agree
// at every coarser level).
//
// A nil *CodeMap is the identity translation; Map on it returns the
// code unchanged.
type CodeMap struct {
	lo     int
	dense  []int
	sparse map[int]int
}

// Map translates a source code. ok is false when the code was never
// observed in the source column the map was built from.
func (m *CodeMap) Map(code int) (int, bool) {
	if m == nil {
		return code, true
	}
	if m.dense != nil {
		i := code - m.lo
		if i < 0 || i >= len(m.dense) || m.dense[i] == unmappedCode {
			return 0, false
		}
		return m.dense[i], true
	}
	v, ok := m.sparse[code]
	return v, ok
}

// Len reports the number of distinct source codes the map covers.
func (m *CodeMap) Len() int {
	if m == nil {
		return 0
	}
	if m.dense != nil {
		n := 0
		for _, v := range m.dense {
			if v != unmappedCode {
				n++
			}
		}
		return n
	}
	return len(m.sparse)
}

// NewSparseCodeMap builds a CodeMap from an explicit translation table
// (copied, so the caller's map stays independent). The incremental
// session uses it to roll base-level group statistics up to its own
// published-node code space, which no column pair describes.
func NewSparseCodeMap(m map[int]int) *CodeMap {
	sp := make(map[int]int, len(m))
	for k, v := range m {
		sp[k] = v
	}
	return &CodeMap{sparse: sp}
}

// BuildCodeMap derives the code translation from one column to a
// row-aligned column: for every row r, Map(from.Code(r)) ==
// to.Code(r). It errors when the columns disagree on length or when
// the relation is not functional — two rows sharing a source code but
// holding different target codes — which would mean the columns are
// not nested refinements of each other (a broken hierarchy).
func BuildCodeMap(from, to Column) (*CodeMap, error) {
	if from == nil || to == nil {
		return nil, fmt.Errorf("table: code map requires two columns")
	}
	n := from.Len()
	if to.Len() != n {
		return nil, fmt.Errorf("table: code map columns have %d vs %d rows", n, to.Len())
	}
	m := &CodeMap{}
	if cr, ok := from.(codeRanger); ok {
		if lo, hi, ok := cr.CodeRange(); ok && hi >= lo && hi-lo < denseCodeMapSpan {
			m.lo = lo
			m.dense = make([]int, hi-lo+1)
			for i := range m.dense {
				m.dense[i] = unmappedCode
			}
		}
	}
	if m.dense == nil {
		m.sparse = make(map[int]int)
	}
	for r := 0; r < n; r++ {
		fc, tc := from.Code(r), to.Code(r)
		if m.dense != nil {
			i := fc - m.lo
			if i < 0 || i >= len(m.dense) {
				return nil, fmt.Errorf("table: code map: row %d code %d outside declared range", r, fc)
			}
			switch cur := m.dense[i]; cur {
			case unmappedCode:
				m.dense[i] = tc
			case tc:
			default:
				return nil, fmt.Errorf("table: code map not functional: code %d maps to both %d and %d", fc, cur, tc)
			}
			continue
		}
		if cur, ok := m.sparse[fc]; !ok {
			m.sparse[fc] = tc
		} else if cur != tc {
			return nil, fmt.Errorf("table: code map not functional: code %d maps to both %d and %d", fc, cur, tc)
		}
	}
	return m, nil
}
