package table

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomMicrodata builds an n-row table with three categorical QI
// columns of bounded cardinality and two confidential columns (one
// categorical, one integer), the shape the roll-up layer sees.
func randomMicrodata(t testing.TB, rng *rand.Rand, n int) *Table {
	t.Helper()
	schema := MustSchema(
		Field{Name: "A", Type: String},
		Field{Name: "B", Type: String},
		Field{Name: "C", Type: String},
		Field{Name: "S1", Type: String},
		Field{Name: "S2", Type: Int},
	)
	b, err := NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b.Append(
			SV(fmt.Sprintf("a%d", rng.Intn(8))),
			SV(fmt.Sprintf("b%d", rng.Intn(6))),
			SV(fmt.Sprintf("c%d", rng.Intn(4))),
			SV(fmt.Sprintf("s%d", rng.Intn(5))),
			IV(int64(rng.Intn(7)-3)),
		)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// coarsen simulates one hierarchy step: values collapse into buckets of
// the given fanout (a nested coarsening, as DGH levels are).
func coarsen(attr string, fanout int) func(Value) (string, error) {
	return func(v Value) (string, error) {
		var k int
		fmt.Sscanf(v.Str()[1:], "%d", &k)
		return fmt.Sprintf("%s_l%d_%d", attr, fanout, k/fanout), nil
	}
}

// statsFromGroupBy derives the expected GroupStats from the reference
// GroupBy path, row lists and all.
func statsFromGroupBy(t testing.TB, tbl *Table, qis, conf []string) *GroupStats {
	t.Helper()
	groups, err := tbl.GroupBy(qis...)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]Column, len(qis))
	for i, n := range qis {
		cols[i], err = tbl.Column(n)
		if err != nil {
			t.Fatal(err)
		}
	}
	confCols := make([]Column, len(conf))
	for i, n := range conf {
		confCols[i], err = tbl.Column(n)
		if err != nil {
			t.Fatal(err)
		}
	}
	out := &GroupStats{NumRows: tbl.NumRows(), NumQI: len(qis), NumConf: len(conf)}
	for _, g := range groups {
		gs := GroupStat{Size: g.Size(), Codes: make([]int, len(cols)), Rep: g.Rows[0], Hists: make([]CodeHist, len(conf))}
		for i, c := range cols {
			gs.Codes[i] = c.Code(g.Rows[0])
		}
		for a, c := range confCols {
			counts := map[int]int{}
			for _, r := range g.Rows {
				counts[c.Code(r)]++
			}
			h := make(CodeHist, 0, len(counts))
			for code, count := range counts {
				h = append(h, CodeCount{Code: code, Count: count})
			}
			for i := 1; i < len(h); i++ {
				for j := i; j > 0 && h[j].Code < h[j-1].Code; j-- {
					h[j], h[j-1] = h[j-1], h[j]
				}
			}
			gs.Hists[a] = h
		}
		out.Groups = append(out.Groups, gs)
	}
	return out
}

// TestGroupStatsMatchesGroupBy: the sharded stats builder must agree
// with the reference GroupBy at every worker count, including group
// order.
func TestGroupStatsMatchesGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	qis := []string{"A", "B", "C"}
	conf := []string{"S1", "S2"}
	for _, n := range []int{0, 1, 7, 100, 503} {
		tbl := randomMicrodata(t, rng, n)
		want := statsFromGroupBy(t, tbl, qis, conf)
		for _, w := range []int{1, 2, 3, 8} {
			got, err := tbl.GroupStats(qis, conf, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d workers=%d: stats diverge from GroupBy\ngot:  %+v\nwant: %+v", n, w, got, want)
			}
		}
	}
	// No key columns is an error; unknown columns are errors.
	tbl := randomMicrodata(t, rng, 5)
	if _, err := tbl.GroupStats(nil, nil, 1); err == nil {
		t.Error("no key columns accepted")
	}
	if _, err := tbl.GroupStats([]string{"nope"}, nil, 1); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := tbl.GroupStats(qis, []string{"nope"}, 1); err == nil {
		t.Error("unknown confidential column accepted")
	}
}

// TestRollupMatchesDirect is the roll-up property test: for randomized
// tables and randomized nested generalization levels, rolling base
// stats up through code maps must be byte-identical — groups, order,
// sizes, histograms, and derived verdict quantities — to building the
// stats directly on the generalized table. Multi-worker builds run the
// sharded path under -race.
func TestRollupMatchesDirect(t *testing.T) {
	qis := []string{"A", "B", "C"}
	conf := []string{"S1", "S2"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomMicrodata(t, rng, 60+rng.Intn(300))

		// Random per-attribute fanouts play the role of hierarchy levels:
		// levels[0] is the base; levels[lvl] coarsens base values into
		// buckets of fanout*lvl (floor division nests, like DGH levels).
		levels := []*Table{tbl}
		fanouts := []int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		for lvl := 1; lvl <= 2; lvl++ {
			next := tbl
			var err error
			for i, attr := range qis {
				next, err = next.MapColumn(attr, coarsen(attr, fanouts[i]*lvl))
				if err != nil {
					t.Fatal(err)
				}
			}
			levels = append(levels, next)
		}

		base, err := tbl.GroupStats(qis, conf, 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		for lvl := 1; lvl < len(levels); lvl++ {
			maps := make([]*CodeMap, len(qis))
			for i, attr := range qis {
				fromCol, err := tbl.Column(attr)
				if err != nil {
					t.Fatal(err)
				}
				toCol, err := levels[lvl].Column(attr)
				if err != nil {
					t.Fatal(err)
				}
				maps[i], err = BuildCodeMap(fromCol, toCol)
				if err != nil {
					t.Fatal(err)
				}
			}
			rolled, err := base.Rollup(maps)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := levels[lvl].GroupStats(qis, conf, 1+rng.Intn(4))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rolled, direct) {
				t.Fatalf("seed %d level %d: rolled stats diverge\nrolled: %+v\ndirect: %+v", seed, lvl, rolled, direct)
			}
			// Derived verdict quantities agree too (suppression at a few k).
			for _, k := range []int{2, 3, 5} {
				if rolled.TuplesBelow(k) != direct.TuplesBelow(k) {
					t.Errorf("seed %d level %d k=%d: TuplesBelow diverges", seed, lvl, k)
				}
				rs, ds := rolled.SuppressBelow(k), direct.SuppressBelow(k)
				if !reflect.DeepEqual(rs, ds) {
					t.Errorf("seed %d level %d k=%d: SuppressBelow diverges", seed, lvl, k)
				}
			}
			if rolled.MinGroupSize() != direct.MinGroupSize() {
				t.Errorf("seed %d level %d: MinGroupSize diverges", seed, lvl)
			}
		}
	}
}

// TestRollupIdentity: rolling up through all-nil (identity) maps must
// reproduce the stats unchanged; mismatched map counts are rejected.
func TestRollupIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := randomMicrodata(t, rng, 80)
	base, err := tbl.GroupStats([]string{"A", "B"}, []string{"S1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	same, err := base.Rollup([]*CodeMap{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, base) {
		t.Error("identity rollup changed the stats")
	}
	if _, err := base.Rollup([]*CodeMap{nil}); err == nil {
		t.Error("short map vector accepted")
	}
}

// TestBuildCodeMap covers the translation contract and its error cases.
func TestBuildCodeMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := randomMicrodata(t, rng, 120)
	gen, err := tbl.MapColumn("A", coarsen("A", 3))
	if err != nil {
		t.Fatal(err)
	}
	from, _ := tbl.Column("A")
	to, _ := gen.Column("A")
	m, err := BuildCodeMap(from, to)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.NumRows(); r++ {
		got, ok := m.Map(from.Code(r))
		if !ok || got != to.Code(r) {
			t.Fatalf("row %d: Map(%d) = %d,%v want %d", r, from.Code(r), got, ok, to.Code(r))
		}
	}
	if m.Len() == 0 {
		t.Error("empty map for populated column")
	}
	if _, ok := m.Map(1 << 30); ok {
		t.Error("unseen code reported as mapped")
	}
	// Identity nil map.
	var id *CodeMap
	if got, ok := id.Map(42); !ok || got != 42 {
		t.Errorf("nil map: Map(42) = %d,%v", got, ok)
	}
	if id.Len() != 0 {
		t.Error("nil map has nonzero length")
	}
	// Row-count mismatch.
	short := tbl.Head(10)
	shortCol, _ := short.Column("A")
	if _, err := BuildCodeMap(from, shortCol); err == nil {
		t.Error("row-count mismatch accepted")
	}
	// Non-functional relation: map a column onto an unrelated one.
	other, _ := tbl.Column("S1")
	if _, err := BuildCodeMap(other, from); err == nil {
		t.Error("non-functional relation accepted")
	}
	if _, err := BuildCodeMap(nil, from); err == nil {
		t.Error("nil column accepted")
	}
}

// TestCodeHistHelpers pins the small histogram accessors.
func TestCodeHistHelpers(t *testing.T) {
	h := CodeHist{{Code: 1, Count: 3}, {Code: 4, Count: 1}, {Code: 9, Count: 2}}
	if h.Distinct() != 3 || h.Total() != 6 || h.MaxCount() != 3 {
		t.Errorf("distinct/total/max = %d/%d/%d", h.Distinct(), h.Total(), h.MaxCount())
	}
	var empty CodeHist
	if empty.Distinct() != 0 || empty.Total() != 0 || empty.MaxCount() != 0 {
		t.Error("empty histogram accessors nonzero")
	}
	merged := mergeHists(CodeHist{{1, 2}, {5, 1}}, CodeHist{{1, 1}, {3, 4}})
	want := CodeHist{{1, 3}, {3, 4}, {5, 1}}
	if !reflect.DeepEqual(merged, want) {
		t.Errorf("merge = %v, want %v", merged, want)
	}
}

// TestGroupStatsProject: projecting statistics onto a subset of the
// key columns must be byte-identical to computing them directly with
// that subset as the key — the roll-up across QI subsets Incognito
// seeds its frequency sets with. The cardinalities exercise both merge
// regimes (few sources folded with sorted merges, many accumulated in
// maps).
func TestGroupStatsProject(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	conf := []string{"S1", "S2"}
	tbl := randomMicrodata(t, rng, 400)
	full, err := tbl.GroupStats([]string{"A", "B", "C"}, conf, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		keep []int
		qis  []string
	}{
		{[]int{0, 1}, []string{"A", "B"}},
		{[]int{0, 2}, []string{"A", "C"}},
		{[]int{1, 2}, []string{"B", "C"}},
		{[]int{0}, []string{"A"}},
		{[]int{2}, []string{"C"}},
	}
	for _, c := range cases {
		got, err := full.Project(c.keep)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tbl.GroupStats(c.qis, conf, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Project(%v) diverges from direct GroupStats(%v)", c.keep, c.qis)
		}
	}

	// Projections chain: dropping columns one at a time matches dropping
	// them at once (how Incognito derives small subsets from larger ones).
	ab, err := full.Project([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := ab.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := full.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Error("chained projection diverges from one-step projection")
	}

	// Identity projections share the receiver outright.
	if id, err := full.Project([]int{0, 1, 2}); err != nil || id != full {
		t.Errorf("identity projection = (%p, %v), want the receiver", id, err)
	}
	// Reordering columns is not the identity and must regroup.
	if re, err := full.Project([]int{2, 0, 1}); err != nil || re == full {
		t.Errorf("reordering projection returned the receiver (err %v)", err)
	}

	if _, err := full.Project(nil); err == nil {
		t.Error("empty projection accepted")
	}
	if _, err := full.Project([]int{3}); err == nil {
		t.Error("out-of-range projection index accepted")
	}
	if _, err := full.Project([]int{-1}); err == nil {
		t.Error("negative projection index accepted")
	}
}
