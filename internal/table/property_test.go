package table

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomTable is a quick.Generator-friendly microdata table with two
// string columns and one int column.
type randomTable struct {
	tbl *Table
}

func (randomTable) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	sch := MustSchema(
		Field{Name: "A", Type: String},
		Field{Name: "B", Type: String},
		Field{Name: "N", Type: Int},
	)
	b, _ := NewBuilder(sch)
	letters := []string{"x", "y", "z", "w"}
	for i := 0; i < n; i++ {
		b.Append(
			SV(letters[r.Intn(len(letters))]),
			SV(letters[r.Intn(len(letters))]),
			IV(int64(r.Intn(5))),
		)
	}
	t, _ := b.Build()
	return reflect.ValueOf(randomTable{tbl: t})
}

// Property: group sizes from GroupBy always sum to the number of rows,
// and every row appears in exactly one group.
func TestGroupByPartitionProperty(t *testing.T) {
	f := func(rt randomTable) bool {
		if rt.tbl.NumRows() == 0 {
			return true
		}
		groups, err := rt.tbl.GroupBy("A", "B")
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		total := 0
		for _, g := range groups {
			total += g.Size()
			for _, r := range g.Rows {
				if seen[r] {
					return false // row in two groups
				}
				seen[r] = true
			}
		}
		return total == rt.tbl.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NumGroups equals len(GroupBy) for any column subset.
func TestNumGroupsMatchesGroupBy(t *testing.T) {
	f := func(rt randomTable) bool {
		if rt.tbl.NumRows() == 0 {
			return true
		}
		for _, cols := range [][]string{{"A"}, {"B"}, {"A", "B"}, {"A", "B", "N"}} {
			groups, err := rt.tbl.GroupBy(cols...)
			if err != nil {
				return false
			}
			n, err := rt.tbl.NumGroups(cols...)
			if err != nil || n != len(groups) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: within a group, all key column values equal the group key.
func TestGroupByKeyConsistency(t *testing.T) {
	f := func(rt randomTable) bool {
		groups, err := rt.tbl.GroupBy("A", "B")
		if rt.tbl.NumRows() == 0 {
			return true
		}
		if err != nil {
			return false
		}
		for _, g := range groups {
			for _, r := range g.Rows {
				a, _ := rt.tbl.Value(r, "A")
				b, _ := rt.tbl.Value(r, "B")
				if !a.Equal(g.Key[0]) || !b.Equal(g.Key[1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ValueCounts counts sum to row count and are descending.
func TestValueCountsProperty(t *testing.T) {
	f := func(rt randomTable) bool {
		vc, err := rt.tbl.ValueCounts("A")
		if err != nil {
			return false
		}
		sum := 0
		for i, c := range vc {
			sum += c.Count
			if i > 0 && c.Count > vc[i-1].Count {
				return false
			}
		}
		return sum == rt.tbl.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DistinctCount(A) == len(ValueCounts(A)).
func TestDistinctCountMatchesValueCounts(t *testing.T) {
	f := func(rt randomTable) bool {
		vc, err1 := rt.tbl.ValueCounts("A")
		n, err2 := rt.tbl.DistinctCount("A")
		return err1 == nil && err2 == nil && n == len(vc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Gather preserves values; Sample is a subset of rows.
func TestSampleSubsetProperty(t *testing.T) {
	f := func(rt randomTable, seed int64) bool {
		n := rt.tbl.NumRows() / 2
		s, err := rt.tbl.Sample(n, seed)
		if err != nil || s.NumRows() != n {
			return false
		}
		// Every sampled row must exist in the original (multiset check on
		// serialized rows).
		counts := make(map[string]int)
		for r := 0; r < rt.tbl.NumRows(); r++ {
			row, _ := rt.tbl.Row(r)
			counts[rowKey(row)]++
		}
		for r := 0; r < s.NumRows(); r++ {
			row, _ := s.Row(r)
			k := rowKey(row)
			counts[k]--
			if counts[k] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func rowKey(row []Value) string {
	s := ""
	for _, v := range row {
		s += v.Str() + "\x00"
	}
	return s
}

// Property: SortBy output is ordered and a permutation of the input.
func TestSortByProperty(t *testing.T) {
	f := func(rt randomTable) bool {
		sorted, err := rt.tbl.SortBy("N", "A")
		if err != nil || sorted.NumRows() != rt.tbl.NumRows() {
			return false
		}
		for r := 1; r < sorted.NumRows(); r++ {
			a, _ := sorted.Value(r-1, "N")
			b, _ := sorted.Value(r, "N")
			if a.Compare(b) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GroupBySorted partitions rows identically to GroupBy (same
// group multiset, different order).
func TestGroupBySortedEquivalence(t *testing.T) {
	f := func(rt randomTable) bool {
		if rt.tbl.NumRows() == 0 {
			return true
		}
		hashed, err1 := rt.tbl.GroupBy("A", "B")
		sorted, err2 := rt.tbl.GroupBySorted("A", "B")
		if err1 != nil || err2 != nil || len(hashed) != len(sorted) {
			return false
		}
		sizeOf := func(gs []Group) map[string]int {
			m := make(map[string]int, len(gs))
			for _, g := range gs {
				m[g.Key[0].Str()+"\x00"+g.Key[1].Str()] = g.Size()
			}
			return m
		}
		hm, sm := sizeOf(hashed), sizeOf(sorted)
		for k, v := range hm {
			if sm[k] != v {
				return false
			}
		}
		// Sorted groups must also cover every row exactly once.
		seen := make(map[int]bool)
		for _, g := range sorted {
			for _, r := range g.Rows {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return len(seen) == rt.tbl.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupBySortedNoColumns(t *testing.T) {
	sch := MustSchema(Field{Name: "A", Type: String})
	tbl, _ := FromText(sch, [][]string{{"x"}})
	if _, err := tbl.GroupBySorted(); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := tbl.GroupBySorted("Missing"); err == nil {
		t.Error("missing column accepted")
	}
}
