package table

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sample draws a simple random sample of n rows without replacement,
// using the given seed for reproducibility. The sampled rows keep their
// original relative order so repeated runs are stable.
func (t *Table) Sample(n int, seed int64) (*Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("table: negative sample size %d", n)
	}
	if n >= t.nrows {
		return t.Clone(), nil
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(t.nrows)[:n]
	sort.Ints(perm)
	return t.Gather(perm)
}

// Shuffle returns a new table with rows in random order.
func (t *Table) Shuffle(seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(t.nrows)
	out, _ := t.Gather(perm)
	return out
}

// SortBy returns a new table with rows ordered by the named columns
// ascending. The sort is stable.
func (t *Table) SortBy(names ...string) (*Table, error) {
	cols := make([]Column, len(names))
	for i, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	rows := make([]int, t.nrows)
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for _, c := range cols {
			cmp := c.Value(rows[a]).Compare(c.Value(rows[b]))
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return t.Gather(rows)
}
