package table

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"
)

// canonStats strips the parts of a GroupStats that legitimately differ
// between a maintained delta and a fresh scan — group order, Rep rows
// and zero-size tombstones — leaving what verdicts depend on.
func canonStats(s *GroupStats) *GroupStats {
	out := &GroupStats{NumRows: s.NumRows, NumQI: s.NumQI, NumConf: s.NumConf}
	for _, g := range s.Groups {
		if g.Size == 0 {
			continue
		}
		cg := GroupStat{Codes: append([]int(nil), g.Codes...), Size: g.Size, Hists: make([]CodeHist, len(g.Hists))}
		for a, h := range g.Hists {
			cg.Hists[a] = append(CodeHist(nil), h...)
		}
		out.Groups = append(out.Groups, cg)
	}
	sort.Slice(out.Groups, func(i, j int) bool {
		a, b := out.Groups[i].Codes, out.Groups[j].Codes
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// applyRow feeds one ledger row id into a StatsDelta using the ledger
// columns' codes, the way the incremental session does.
func applyRow(t *testing.T, d *StatsDelta, qiCols, confCols []Column, id int, retire bool) {
	t.Helper()
	qi := make([]int, len(qiCols))
	for i, c := range qiCols {
		qi[i] = c.Code(id)
	}
	conf := make([]int, len(confCols))
	for i, c := range confCols {
		conf[i] = c.Code(id)
	}
	var err error
	if retire {
		_, err = d.Retire(qi, conf)
	} else {
		_, err = d.Append(qi, conf, id)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestStatsDeltaMatchesFreshScan: after an arbitrary append/retire
// history, the maintained statistics must canonically equal a fresh
// GroupStats scan over the surviving rows.
func TestStatsDeltaMatchesFreshScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	qis := []string{"A", "B", "C"}
	conf := []string{"S1", "S2"}
	base := randomMicrodata(t, rng, 400)
	led := NewLedger(base)
	s0, err := led.Table().GroupStats(qis, conf, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewStatsDelta(s0)
	if err != nil {
		t.Fatal(err)
	}
	cols := func(names []string) []Column {
		out := make([]Column, len(names))
		for i, n := range names {
			out[i], err = led.Table().Column(n)
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	qiCols, confCols := cols(qis), cols(conf)

	for batch := 0; batch < 5; batch++ {
		// Retire ~5% of live rows, then append a mix of familiar and
		// brand-new values (new dictionary codes on A and S1).
		for id := 0; id < led.NumRows(); id++ {
			if led.Live(id) && rng.Intn(20) == 0 {
				applyRow(t, d, qiCols, confCols, id, true)
				if err := led.Retire(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 30; i++ {
			a := fmt.Sprintf("a%d", rng.Intn(10)) // 8,9 are new values
			s1 := fmt.Sprintf("s%d", rng.Intn(7)) // 5,6 are new values
			cells := []string{
				a,
				fmt.Sprintf("b%d", rng.Intn(6)),
				fmt.Sprintf("c%d", rng.Intn(4)),
				s1,
				strconv.Itoa(rng.Intn(9) - 4),
			}
			id, err := led.AppendText(cells)
			if err != nil {
				t.Fatal(err)
			}
			applyRow(t, d, qiCols, confCols, id, false)
		}

		snap, err := led.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		want, err := snap.GroupStats(qis, conf, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, gotC, wantC := d.Stats(), canonStats(d.Stats()), canonStats(want)
		if got.NumRows != led.NumLive() {
			t.Fatalf("batch %d: maintained NumRows %d, live rows %d", batch, got.NumRows, led.NumLive())
		}
		if !reflect.DeepEqual(gotC, wantC) {
			t.Fatalf("batch %d: maintained stats diverge from fresh scan\ngot:  %+v\nwant: %+v", batch, gotC, wantC)
		}
	}
}

// TestStatsDeltaChangedGroups: Changed must name exactly the groups an
// append/retire touched, and Reset must clear it.
func TestStatsDeltaChangedGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomMicrodata(t, rng, 120)
	led := NewLedger(base)
	s0, err := led.Table().GroupStats([]string{"A", "B"}, []string{"S1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewStatsDelta(s0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumChanged() != 0 {
		t.Fatalf("fresh delta reports %d changed groups", d.NumChanged())
	}
	g1, err := d.Append([]int{d.stats.Groups[3].Codes[0], d.stats.Groups[3].Codes[1]}, []int{0}, 999)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != 3 {
		t.Fatalf("append to existing key landed in group %d, want 3", g1)
	}
	g2, err := d.Append([]int{1 << 18, 7}, []int{0}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != len(d.stats.Groups)-1 {
		t.Fatalf("new key landed in group %d, want %d", g2, len(d.stats.Groups)-1)
	}
	if want := []int{3, g2}; !reflect.DeepEqual(d.Changed(), want) {
		t.Fatalf("Changed() = %v, want %v", d.Changed(), want)
	}
	d.Reset()
	if d.NumChanged() != 0 {
		t.Fatalf("Reset left %d changed groups", d.NumChanged())
	}
}

// TestStatsDeltaTombstone: a group drained to zero stays claimed (a
// re-append finds it), contributes nothing to TuplesBelow, and is
// dropped by SuppressBelow.
func TestStatsDeltaTombstone(t *testing.T) {
	s := &GroupStats{NumRows: 3, NumQI: 1, NumConf: 1, Groups: []GroupStat{
		{Codes: []int{0}, Size: 2, Rep: 0, Hists: []CodeHist{{{Code: 4, Count: 2}}}},
		{Codes: []int{1}, Size: 1, Rep: 2, Hists: []CodeHist{{{Code: 5, Count: 1}}}},
	}}
	d, err := NewStatsDelta(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Retire([]int{1}, []int{5}); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats(); len(got.Groups) != 2 || got.Groups[1].Size != 0 || len(got.Groups[1].Hists[0]) != 0 {
		t.Fatalf("tombstone not drained in place: %+v", got.Groups)
	}
	if below := d.Stats().TuplesBelow(2); below != 0 {
		t.Fatalf("tombstone contributes %d tuples below k", below)
	}
	if sup := d.Stats().SuppressBelow(2); len(sup.Groups) != 1 || sup.NumRows != 2 {
		t.Fatalf("SuppressBelow kept the tombstone: %+v", sup)
	}
	if g, err := d.Append([]int{1}, []int{9}, 7); err != nil || g != 1 {
		t.Fatalf("re-append to tombstoned key: group %d err %v", g, err)
	}
	if gr := d.Stats().Groups[1]; gr.Size != 1 || !reflect.DeepEqual(gr.Hists[0], CodeHist{{Code: 9, Count: 1}}) {
		t.Fatalf("tombstone revival wrong: %+v", gr)
	}
}

// TestStatsDeltaCopyOnWrite: statistics escaped through Stats (and
// views derived from them, which share histogram slices) must not be
// mutated by later delta writes.
func TestStatsDeltaCopyOnWrite(t *testing.T) {
	s := &GroupStats{NumRows: 4, NumQI: 1, NumConf: 1, Groups: []GroupStat{
		{Codes: []int{0}, Size: 3, Rep: 0, Hists: []CodeHist{{{Code: 1, Count: 2}, {Code: 2, Count: 1}}}},
		{Codes: []int{1}, Size: 1, Rep: 3, Hists: []CodeHist{{{Code: 2, Count: 1}}}},
	}}
	d, err := NewStatsDelta(s)
	if err != nil {
		t.Fatal(err)
	}
	// First write after construction must not touch the seed hists.
	seedHist := s.Groups[0].Hists[0]
	if _, err := d.Append([]int{0}, []int{1}, 9); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seedHist, CodeHist{{Code: 1, Count: 2}, {Code: 2, Count: 1}}) {
		t.Fatalf("seed histogram mutated in place: %+v", seedHist)
	}

	// A view escaped through Stats (SuppressBelow shares slices) must
	// survive further writes, including in-place count increments.
	sup := d.Stats().SuppressBelow(2)
	frozen := canonStats(sup)
	if _, err := d.Append([]int{0}, []int{2}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Retire([]int{0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if got := canonStats(sup); !reflect.DeepEqual(got, frozen) {
		t.Fatalf("escaped view mutated by later delta writes\ngot:  %+v\nwant: %+v", got, frozen)
	}
	// And the maintained side still sees every write.
	if gr := d.Stats().Groups[0]; gr.Size != 4 {
		t.Fatalf("maintained group size %d, want 4", gr.Size)
	}
}

// TestStatsDeltaErrors: malformed rows are rejected without corrupting
// the maintained statistics.
func TestStatsDeltaErrors(t *testing.T) {
	s := &GroupStats{NumRows: 1, NumQI: 2, NumConf: 1, Groups: []GroupStat{
		{Codes: []int{0, 0}, Size: 1, Rep: 0, Hists: []CodeHist{{{Code: 3, Count: 1}}}},
	}}
	d, err := NewStatsDelta(s)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func() error{
		func() error { _, err := d.Append([]int{1}, []int{0}, 1); return err }, // short key
		func() error { _, err := d.Append([]int{1, 2}, nil, 1); return err },   // missing conf
		func() error { _, err := d.Retire([]int{9, 9}, []int{3}); return err }, // unknown group
		func() error { _, err := d.Retire([]int{0, 0}, []int{8}); return err }, // code not in hist
	}
	for i, fn := range cases {
		if fn() == nil {
			t.Fatalf("case %d: error expected", i)
		}
	}
	if got := canonStats(d.Stats()); !reflect.DeepEqual(got, canonStats(s)) {
		t.Fatalf("failed operations corrupted the statistics: %+v", got)
	}
	// Draining the one row, then retiring again, hits the empty-group check.
	if _, err := d.Retire([]int{0, 0}, []int{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Retire([]int{0, 0}, []int{3}); err == nil {
		t.Fatal("retire from empty group succeeded")
	}
	if _, err := NewStatsDelta(nil); err == nil {
		t.Fatal("NewStatsDelta(nil) succeeded")
	}
}

// TestLedgerLifecycle: stable ids, live accounting, snapshot ordering,
// and retire errors.
func TestLedgerLifecycle(t *testing.T) {
	schema := MustSchema(Field{Name: "Q", Type: String}, Field{Name: "N", Type: Int})
	b, err := NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	b.Append(SV("x"), IV(1))
	b.Append(SV("y"), IV(2))
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	led := NewLedger(tbl)
	id, err := led.AppendText([]string{"z", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || led.NumRows() != 3 || led.NumLive() != 3 {
		t.Fatalf("append id=%d rows=%d live=%d", id, led.NumRows(), led.NumLive())
	}
	// The source table must be untouched by ledger appends.
	if tbl.NumRows() != 2 {
		t.Fatalf("source table grew to %d rows", tbl.NumRows())
	}
	if err := led.Retire(1); err != nil {
		t.Fatal(err)
	}
	if led.NumLive() != 2 || led.Live(1) || !led.Live(2) {
		t.Fatalf("retire bookkeeping wrong: live=%d", led.NumLive())
	}
	if err := led.Retire(1); err == nil {
		t.Fatal("double retire succeeded")
	}
	if err := led.Retire(5); !errors.Is(err, ErrRowRange) {
		t.Fatalf("out-of-range retire: %v", err)
	}
	snap, err := led.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumRows() != 2 {
		t.Fatalf("snapshot has %d rows", snap.NumRows())
	}
	v0, _ := snap.Value(0, "Q")
	v1, _ := snap.Value(1, "Q")
	if v0.Str() != "x" || v1.Str() != "z" {
		t.Fatalf("snapshot rows out of order: %q %q", v0.Str(), v1.Str())
	}
}

// TestLedgerAppendRollback: a mid-row parse failure must leave every
// column at its prior length, and the ledger usable.
func TestLedgerAppendRollback(t *testing.T) {
	schema := MustSchema(Field{Name: "Q", Type: String}, Field{Name: "N", Type: Int})
	b, err := NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	b.Append(SV("x"), IV(1))
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	led := NewLedger(tbl)
	if _, err := led.AppendText([]string{"y", "not-a-number"}); err == nil {
		t.Fatal("bad int cell accepted")
	}
	if _, err := led.AppendText([]string{"y"}); err == nil {
		t.Fatal("short row accepted")
	}
	if led.NumRows() != 1 {
		t.Fatalf("failed appends changed row count to %d", led.NumRows())
	}
	for i := 0; i < 2; i++ {
		if c := led.Table().ColumnAt(i); c.Len() != 1 {
			t.Fatalf("column %d has ragged length %d", i, c.Len())
		}
	}
	id, err := led.AppendText([]string{"y", "2"})
	if err != nil || id != 1 {
		t.Fatalf("ledger unusable after rollback: id=%d err=%v", id, err)
	}
	v, err := led.Table().Value(1, "N")
	if err != nil || v.Int() != 2 {
		t.Fatalf("recovered append stored %v (err %v)", v, err)
	}
}

// TestIntColumnAppendInvalidatesMemos: appends must discard the
// memoized code range and dictionary, or packed plans built after the
// append would misclassify the new values.
func TestIntColumnAppendInvalidatesMemos(t *testing.T) {
	c := &intColumn{vals: []int64{3, 5, 4}}
	if lo, hi, ok := c.CodeRange(); !ok || lo != 3 || hi != 5 {
		t.Fatalf("CodeRange = %d..%d ok=%v", lo, hi, ok)
	}
	if d := c.intDict(); len(d.vals) != 3 || d.id(3) != 0 {
		t.Fatal("seed dict wrong")
	}
	if err := c.AppendValue(IV(7)); err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := c.CodeRange(); !ok || lo != 3 || hi != 7 {
		t.Fatalf("CodeRange after append = %d..%d ok=%v (stale memo)", lo, hi, ok)
	}
	if d := c.intDict(); len(d.vals) != 4 || d.id(7) != 3 {
		t.Fatal("dict after append misses appended value (stale memo)")
	}
	if err := c.AppendText(" -2 "); err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := c.CodeRange(); !ok || lo != -2 || hi != 7 {
		t.Fatalf("CodeRange after text append = %d..%d ok=%v (stale memo)", lo, hi, ok)
	}
}

// TestNewSparseCodeMap: explicit translation tables map and miss as
// expected, and the input map stays independent.
func TestNewSparseCodeMap(t *testing.T) {
	in := map[int]int{1: 10, 2: 10, 3: 30}
	m := NewSparseCodeMap(in)
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.Map(2); !ok || v != 10 {
		t.Fatalf("Map(2) = %d, %v", v, ok)
	}
	if _, ok := m.Map(9); ok {
		t.Fatal("Map(9) resolved an unknown code")
	}
	in[9] = 90
	if _, ok := m.Map(9); ok {
		t.Fatal("caller mutation leaked into the map")
	}
}
