package table

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Group is one equivalence class of a group-by: the key values and the
// indices of rows (into the grouped table) that share them.
type Group struct {
	Key  []Value
	Rows []int
}

// Size returns the number of rows in the group.
func (g Group) Size() int { return len(g.Rows) }

// KeyString renders the group key as a comma-separated string.
func (g Group) KeyString() string {
	var b strings.Builder
	for i, v := range g.Key {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Str())
	}
	return b.String()
}

// packPlan describes how to pack one row's multi-column codes into a
// single uint64 key: key = sum_i (code_i - off_i) * stride_i. A plan
// exists only when every key column reports a code range and the ranges'
// product fits in a uint64 (mixed-radix positional encoding, so distinct
// code tuples map to distinct keys). The encoding is invertible —
// code_i = off_i + (key / stride_i) mod span_i — which is how the
// chunked stats kernel recovers group codes without touching rows.
type packPlan struct {
	offs    []int
	strides []uint64
	spans   []uint64
	// span is the total key-space size (the product of the per-column
	// spans); keys lie in [0, span).
	span uint64
}

// packedPlan builds the uint64 packing plan for the key columns, or
// reports ok=false when some column's codes are unbounded or the
// combined cardinality overflows.
func packedPlan(cols []Column) (packPlan, bool) {
	offs := make([]int, len(cols))
	strides := make([]uint64, len(cols))
	spans := make([]uint64, len(cols))
	stride := uint64(1)
	for i, c := range cols {
		cr, ok := c.(codeRanger)
		if !ok {
			return packPlan{}, false
		}
		lo, hi, ok := cr.CodeRange()
		if !ok || hi < lo {
			return packPlan{}, false
		}
		// Unsigned difference: hi-lo overflows int for wide int-column
		// ranges, and the full 2^64-wide domain would wrap span to 0 —
		// poisoning stride (and the dense key table) instead of falling
		// back to the byte-string keys.
		diff := uint64(hi) - uint64(lo)
		if diff == math.MaxUint64 {
			return packPlan{}, false
		}
		span := diff + 1
		if span > math.MaxUint64/stride {
			return packPlan{}, false
		}
		offs[i] = lo
		strides[i] = stride
		spans[i] = span
		stride *= span
	}
	return packPlan{offs: offs, strides: strides, spans: spans, span: stride}, true
}

// key packs row r's codes per the plan.
func (p packPlan) key(cols []Column, r int) uint64 {
	k := uint64(0)
	for i, c := range cols {
		k += uint64(c.Code(r)-p.offs[i]) * p.strides[i]
	}
	return k
}

// codes inverts a packed key back into per-column codes.
func (p packPlan) codes(k uint64, dst []int) {
	for i := range dst {
		dst[i] = p.offs[i] + int((k/p.strides[i])%p.spans[i])
	}
}

// blockKeys computes the packed keys of rows [lo, hi) into
// keys[0 : hi-lo], reading each column's codes in bulk: packed string
// columns stream out of their bit-packed words, int and float columns
// out of their backing arrays — no per-row interface call. scratch must
// have capacity for hi-lo codes.
func (p packPlan) blockKeys(cols []Column, lo, hi int, keys []uint64, scratch []int32) {
	n := hi - lo
	keys = keys[:n]
	for j := range keys {
		keys[j] = 0
	}
	for i, c := range cols {
		off, stride := p.offs[i], p.strides[i]
		switch col := c.(type) {
		case *stringColumn:
			scratch = col.codes32(scratch[:0], lo, hi)
			for j, v := range scratch {
				keys[j] += uint64(int(v)-off) * stride
			}
		case *intColumn:
			o := int64(off)
			for j, v := range col.vals[lo:hi] {
				keys[j] += uint64(v-o) * stride
			}
		case *floatColumn:
			for j, v := range col.codes[lo:hi] {
				keys[j] += uint64(int(v)-off) * stride
			}
		default:
			for j := 0; j < n; j++ {
				keys[j] += uint64(c.Code(lo+j)-off) * stride
			}
		}
	}
}

// groupHint sizes the group-index maps of GroupBy, NumGroups and
// GroupStats: half the rows is a fine guess for small tables, but on
// large low-cardinality tables it over-allocates badly (a million-row
// table rarely has half a million QI-groups), so the hint is capped.
func groupHint(nrows int) int {
	const maxHint = 1 << 16
	if h := nrows/2 + 1; h < maxHint {
		return h
	}
	return maxHint
}

// GroupBy partitions the table's rows by equality on the named columns.
// Groups are returned in order of first appearance, which makes results
// deterministic for a given row order. This is the engine behind the
// paper's "SELECT COUNT(*) ... GROUP BY key attributes" checks.
//
// When every key column's code cardinality is known and their product
// fits in a machine word, rows are scanned block-at-a-time through
// packed uint64 keys, resolved against a flat key table (small key
// spaces) or an int-keyed map; otherwise the per-row varint byte-string
// key is used. All paths produce identical groups in identical order
// (BenchmarkGroupByStrategies covers them).
func (t *Table) GroupBy(names ...string) ([]Group, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("table: group by with no columns")
	}
	cols := make([]Column, len(names))
	for i, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	var groups []Group
	newGroup := func(r int) Group {
		kv := make([]Value, len(cols))
		for i, c := range cols {
			kv[i] = c.Value(r)
		}
		return Group{Key: kv}
	}
	if plan, ok := packedPlan(cols); ok {
		ar := getStatsArena()
		defer ar.release()
		dense := plan.span <= maxDenseKeySpan
		if dense {
			ar.ensureKeyTable(int(plan.span))
		}
		for lo := 0; lo < t.nrows; lo += blockRows {
			hi := lo + blockRows
			if hi > t.nrows {
				hi = t.nrows
			}
			plan.blockKeys(cols, lo, hi, ar.keys, ar.scratch)
			if dense {
				for j, k := range ar.keys[:hi-lo] {
					g := ar.keyTable[k]
					if g == 0 {
						g = int32(len(groups)) + 1
						ar.keyTable[k] = g
						ar.gkeys = append(ar.gkeys, k)
						groups = append(groups, newGroup(lo+j))
					}
					groups[g-1].Rows = append(groups[g-1].Rows, lo+j)
				}
			} else {
				for j, k := range ar.keys[:hi-lo] {
					g, ok := ar.idx[k]
					if !ok {
						g = int32(len(groups))
						ar.idx[k] = g
						groups = append(groups, newGroup(lo+j))
					}
					groups[g].Rows = append(groups[g].Rows, lo+j)
				}
			}
		}
		return groups, nil
	}
	idx := make(map[string]int, groupHint(t.nrows))
	key := make([]byte, 0, 16*len(cols))
	for r := 0; r < t.nrows; r++ {
		key = key[:0]
		for _, c := range cols {
			key = binary.AppendVarint(key, int64(c.Code(r)))
		}
		g, ok := idx[string(key)]
		if !ok {
			g = len(groups)
			idx[string(key)] = g
			groups = append(groups, newGroup(r))
		}
		groups[g].Rows = append(groups[g].Rows, r)
	}
	return groups, nil
}

// NumGroups counts the distinct combinations of values of the named
// columns without materializing the groups. It uses the same packed
// uint64 fast path as GroupBy when the key columns admit it.
func (t *Table) NumGroups(names ...string) (int, error) {
	if len(names) == 0 {
		return 0, fmt.Errorf("table: group count with no columns")
	}
	cols := make([]Column, len(names))
	for i, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return 0, err
		}
		cols[i] = c
	}
	if plan, ok := packedPlan(cols); ok {
		ar := getStatsArena()
		defer ar.release()
		dense := plan.span <= maxDenseKeySpan
		if dense {
			ar.ensureKeyTable(int(plan.span))
		}
		n := 0
		for lo := 0; lo < t.nrows; lo += blockRows {
			hi := lo + blockRows
			if hi > t.nrows {
				hi = t.nrows
			}
			plan.blockKeys(cols, lo, hi, ar.keys, ar.scratch)
			if dense {
				for _, k := range ar.keys[:hi-lo] {
					if ar.keyTable[k] == 0 {
						ar.keyTable[k] = 1
						ar.gkeys = append(ar.gkeys, k)
						n++
					}
				}
			} else {
				for _, k := range ar.keys[:hi-lo] {
					if _, ok := ar.idx[k]; !ok {
						ar.idx[k] = 1
						n++
					}
				}
			}
		}
		return n, nil
	}
	seen := make(map[string]struct{}, groupHint(t.nrows))
	key := make([]byte, 0, 16*len(cols))
	for r := 0; r < t.nrows; r++ {
		key = key[:0]
		for _, c := range cols {
			key = binary.AppendVarint(key, int64(c.Code(r)))
		}
		if _, ok := seen[string(key)]; !ok {
			seen[string(key)] = struct{}{}
		}
	}
	return len(seen), nil
}

// DistinctInRows counts the distinct values of the named column over the
// given row subset. Used by the p-sensitivity group scan.
func (t *Table) DistinctInRows(name string, rows []int) (int, error) {
	c, err := t.Column(name)
	if err != nil {
		return 0, err
	}
	seen := make(map[int]struct{}, len(rows))
	for _, r := range rows {
		seen[c.Code(r)] = struct{}{}
	}
	return len(seen), nil
}

// DistinctAtLeast reports whether the named column takes at least p
// distinct values over the given row subset, stopping as soon as the
// p-th distinct code is seen. The p-sensitivity scans only ever need
// the ">= p?" verdict, not the exact count, so this saves the tail of
// every scan over a qualifying group.
func (t *Table) DistinctAtLeast(name string, rows []int, p int) (bool, error) {
	c, err := t.Column(name)
	if err != nil {
		return false, err
	}
	if p <= 0 {
		return true, nil
	}
	if p == 1 {
		return len(rows) > 0, nil
	}
	seen := make(map[int]struct{}, p)
	for _, r := range rows {
		seen[c.Code(r)] = struct{}{}
		if len(seen) >= p {
			return true, nil
		}
	}
	return false, nil
}

// DistinctCount counts the distinct values in the named column, the
// paper's "SELECT COUNT(DISTINCT S) FROM IM".
func (t *Table) DistinctCount(name string) (int, error) {
	c, err := t.Column(name)
	if err != nil {
		return 0, err
	}
	seen := make(map[int]struct{})
	for i := 0; i < c.Len(); i++ {
		seen[c.Code(i)] = struct{}{}
	}
	return len(seen), nil
}

// ValueCounts returns the frequency of each distinct value in the named
// column, sorted by descending frequency (ties broken by value order so
// results are deterministic).
func (t *Table) ValueCounts(name string) ([]ValueCount, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	byCode := make(map[int]*ValueCount)
	order := make([]int, 0)
	for i := 0; i < c.Len(); i++ {
		code := c.Code(i)
		vc, ok := byCode[code]
		if !ok {
			vc = &ValueCount{Value: c.Value(i)}
			byCode[code] = vc
			order = append(order, code)
		}
		vc.Count++
	}
	out := make([]ValueCount, 0, len(order))
	for _, code := range order {
		out = append(out, *byCode[code])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value.Compare(out[j].Value) < 0
	})
	return out, nil
}

// ValueCount pairs a distinct value with its number of occurrences.
type ValueCount struct {
	Value Value
	Count int
}

// GroupBySorted is the sort-based alternative to GroupBy: rows are
// ordered by their per-column codes and groups read off as runs. Same
// contract as GroupBy except groups appear in code order rather than
// first-appearance order. It exists for the hash-vs-sort ablation
// (DESIGN.md §5.4); the hash-based GroupBy is the default everywhere.
func (t *Table) GroupBySorted(names ...string) ([]Group, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("table: group by with no columns")
	}
	cols := make([]Column, len(names))
	for i, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	rows := make([]int, t.nrows)
	for i := range rows {
		rows[i] = i
	}
	sort.Slice(rows, func(a, b int) bool {
		for _, c := range cols {
			ca, cb := c.Code(rows[a]), c.Code(rows[b])
			if ca != cb {
				return ca < cb
			}
		}
		return rows[a] < rows[b]
	})
	var groups []Group
	sameGroup := func(a, b int) bool {
		for _, c := range cols {
			if c.Code(a) != c.Code(b) {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(rows); {
		j := i
		for j < len(rows) && sameGroup(rows[i], rows[j]) {
			j++
		}
		kv := make([]Value, len(cols))
		for k, c := range cols {
			kv[k] = c.Value(rows[i])
		}
		groups = append(groups, Group{Key: kv, Rows: append([]int(nil), rows[i:j]...)})
		i = j
	}
	return groups, nil
}
