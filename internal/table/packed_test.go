package table

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// buildStringColumn makes an unfrozen column over the given row codes,
// with value v<i> for code i — the construction-time storage state.
func buildStringColumn(t testing.TB, codes []int, card int) *stringColumn {
	t.Helper()
	c := newStringColumn()
	// Intern the full dictionary first so codes are stable and the
	// packed width is determined by card, not by which codes appear.
	for i := 0; i < card; i++ {
		c.intern(fmt.Sprintf("v%d", i))
	}
	for _, code := range codes {
		if code >= card {
			t.Fatalf("code %d outside cardinality %d", code, card)
		}
		c.codes = append(c.codes, int32(code))
	}
	return c
}

// TestPackedUnpackedColumnsAgree is the packed-code property test: for
// cardinalities straddling every width boundary — 2 (1-bit), 256
// (8-bit), 2^16 (the widest packed form) and beyond (the unpacked
// []uint32 fast path, 32-bit) — a frozen column must agree with its
// unfrozen twin on Len, Value, Code, CodeRange, Codes and GroupBy.
func TestPackedUnpackedColumnsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cards := []int{1, 2, 3, 255, 256, 257, 1 << 15, 1<<16 - 1, 1 << 16, 1<<16 + 1, 1 << 17}
	for _, card := range cards {
		n := 500 + rng.Intn(500)
		codes := make([]int, n)
		for i := range codes {
			codes[i] = rng.Intn(card)
		}
		unfrozen := buildStringColumn(t, codes, card)
		frozen := buildStringColumn(t, codes, card)
		frozen.freeze()
		if frozen.Len() != unfrozen.Len() {
			t.Fatalf("card %d: Len %d != %d", card, frozen.Len(), unfrozen.Len())
		}
		for i := 0; i < n; i++ {
			if frozen.Code(i) != unfrozen.Code(i) {
				t.Fatalf("card %d: Code(%d) %d != %d", card, i, frozen.Code(i), unfrozen.Code(i))
			}
			if !frozen.Value(i).Equal(unfrozen.Value(i)) {
				t.Fatalf("card %d: Value(%d) differs", card, i)
			}
		}
		flo, fhi, fok := frozen.CodeRange()
		ulo, uhi, uok := unfrozen.CodeRange()
		if flo != ulo || fhi != uhi || fok != uok {
			t.Fatalf("card %d: CodeRange (%d,%d,%v) != (%d,%d,%v)", card, flo, fhi, fok, ulo, uhi, uok)
		}
		// Bulk extraction over random sub-ranges, including word-straddling
		// offsets, must match the per-row reads.
		for trial := 0; trial < 20; trial++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo)
			got := frozen.Codes(nil, lo, hi)
			if len(got) != hi-lo {
				t.Fatalf("card %d: Codes [%d,%d) returned %d codes", card, lo, hi, len(got))
			}
			for j, code := range got {
				if int(code) != codes[lo+j] {
					t.Fatalf("card %d: Codes [%d,%d)[%d] = %d, want %d", card, lo, hi, j, code, codes[lo+j])
				}
			}
		}
		// A frozen column appended to un-freezes and re-freezes exactly.
		refrozen := buildStringColumn(t, codes, card)
		refrozen.freeze()
		refrozen.append(fmt.Sprintf("v%d", codes[0]))
		refrozen.freeze()
		if refrozen.Len() != n+1 || refrozen.Code(n) != codes[0] {
			t.Fatalf("card %d: unfreeze/refreeze round-trip broke", card)
		}
	}
}

// TestPackedGroupByAgree runs GroupBy over tables whose only difference
// is the columns' storage state (packed vs plain codes); groups and
// order must be identical.
func TestPackedGroupByAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	schema := MustSchema(Field{Name: "A", Type: String}, Field{Name: "B", Type: String})
	for _, card := range []int{2, 17, 256} {
		n := 2000
		acodes := make([]int, n)
		bcodes := make([]int, n)
		for i := range acodes {
			acodes[i] = rng.Intn(card)
			bcodes[i] = rng.Intn(3)
		}
		frozenA, frozenB := buildStringColumn(t, acodes, card), buildStringColumn(t, bcodes, 3)
		frozenA.freeze()
		frozenB.freeze()
		plainA, plainB := buildStringColumn(t, acodes, card), buildStringColumn(t, bcodes, 3)
		packed := &Table{schema: schema, cols: []Column{frozenA, frozenB}, nrows: n}
		plain := &Table{schema: schema, cols: []Column{plainA, plainB}, nrows: n}
		gp, err := packed.GroupBy("A", "B")
		if err != nil {
			t.Fatal(err)
		}
		gu, err := plain.GroupBy("A", "B")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gp, gu) {
			t.Fatalf("card %d: packed and plain GroupBy disagree", card)
		}
	}
}

// TestFloatCodesDistinct is the regression test for the float-code
// truncation hazard: the former int64(v*1e6) scheme collided distinct
// small magnitudes (1e-7 and 2e-7 both truncated to 0) and overflowed
// large ones. Dictionary codes must keep every distinct value distinct.
func TestFloatCodesDistinct(t *testing.T) {
	vals := []float64{
		0, 1e-7, 2e-7, -1e-7, // all collided to 0 under *1e6
		1e13, 1e13 + 1, // overflowed int64 under *1e6
		-1e13, math.MaxFloat64, -math.MaxFloat64,
		1.5, 1.5000001,
	}
	c := newFloatColumn()
	for _, v := range vals {
		if err := c.AppendValue(FV(v)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]float64{}
	for i, v := range vals {
		code := c.Code(i)
		if prev, ok := seen[code]; ok && prev != v {
			t.Errorf("values %g and %g share code %d", prev, v, code)
		}
		seen[code] = v
	}
	// Equal values share a code; NaN rows form one class despite
	// NaN != NaN.
	c2 := newFloatColumn()
	for _, v := range []float64{2.5, math.NaN(), 2.5, math.NaN()} {
		if err := c2.AppendValue(FV(v)); err != nil {
			t.Fatal(err)
		}
	}
	if c2.Code(0) != c2.Code(2) {
		t.Error("equal values got distinct codes")
	}
	if c2.Code(1) != c2.Code(3) {
		t.Error("NaN rows got distinct codes")
	}
	if c2.Code(0) == c2.Code(1) {
		t.Error("2.5 and NaN share a code")
	}
	// Codes are dense, so float columns join the packed group-by path.
	lo, hi, ok := c.CodeRange()
	if !ok || lo != 0 || hi != len(vals)-1 {
		t.Errorf("CodeRange = (%d, %d, %v), want dense [0, %d]", lo, hi, ok, len(vals)-1)
	}
}

// TestStringGatherSharesDict pins the Gather fix: a gather borrows the
// source dictionary instead of re-interning it, so its cost does not
// scale with dictionary size, and the first novel append copies the
// borrowed dictionary rather than mutating it.
func TestStringGatherSharesDict(t *testing.T) {
	const card = 10000
	codes := make([]int, card)
	for i := range codes {
		codes[i] = i
	}
	src := buildStringColumn(t, codes, card)
	src.freeze()
	rows := []int{1, 3, 5, 7}
	out := src.Gather(rows).(*stringColumn)
	if &out.dict[0] != &src.dict[0] {
		t.Fatal("gathered column copied the dictionary")
	}
	for j, r := range rows {
		if !out.Value(j).Equal(src.Value(r)) {
			t.Fatalf("gathered row %d differs", j)
		}
	}
	// The gather allocates O(rows), never O(dict): a handful of slice
	// headers and the packed code words, regardless of the 10k-entry
	// dictionary.
	allocs := testing.AllocsPerRun(10, func() {
		src.Gather(rows)
	})
	if allocs > 8 {
		t.Errorf("Gather allocated %.0f objects for %d rows; the dictionary is being copied", allocs, len(rows))
	}
	// Copy-on-write: appending a novel value must not grow the shared
	// dictionary under the source.
	before := len(src.dict)
	out.append("novel-value")
	if len(src.dict) != before {
		t.Fatal("append to gathered column mutated the source dictionary")
	}
	if out.Value(out.Len() - 1).Str() != "novel-value" {
		t.Fatal("append to gathered column lost the value")
	}
}

// TestGatherLenderCopyOnWrite pins the other direction of the shared-
// dictionary contract: after a Gather the LENDER's dictionary is shared
// too, so a novel append to the source must copy-on-write rather than
// grow the dictionary in place underneath the borrower. Pre-fix, the
// borrower then found the lender's new value in the shared index with a
// code beyond its own dictionary and panicked in Value.
func TestGatherLenderCopyOnWrite(t *testing.T) {
	src := buildStringColumn(t, []int{0, 1, 2, 3}, 4)
	src.freeze()
	out := src.Gather([]int{1, 3}).(*stringColumn)
	dictBefore := len(out.dict)
	src.append("lender-novel")
	if len(out.dict) != dictBefore {
		t.Fatal("append to lender grew the borrower's dictionary")
	}
	if got := src.Value(src.Len() - 1).Str(); got != "lender-novel" {
		t.Fatalf("lender append stored %q", got)
	}
	out.append("lender-novel")
	if got := out.Value(out.Len() - 1).Str(); got != "lender-novel" {
		t.Fatalf("borrower append stored %q", got)
	}
	if out.Value(0).Str() != "v1" || out.Value(1).Str() != "v3" {
		t.Fatal("borrower's original rows changed")
	}
}

// TestGatherMemBytesCountsDictOnce: a borrowed dictionary is attributed
// to the column it was gathered from, so cache telemetry doesn't count
// the same dictionary once per borrower.
func TestGatherMemBytesCountsDictOnce(t *testing.T) {
	src := buildStringColumn(t, []int{0, 1, 2}, 3)
	src.freeze()
	lenderBytes := src.memBytes()
	out := src.Gather([]int{0, 2}).(*stringColumn)
	if got := out.memBytes(); got != out.packed.memBytes() {
		t.Errorf("borrower memBytes = %d, want packed codes only (%d)", got, out.packed.memBytes())
	}
	if got := src.memBytes(); got != lenderBytes {
		t.Errorf("lender memBytes changed across Gather: %d != %d", got, lenderBytes)
	}
	// Once the borrower copies-on-write it owns its dictionary and
	// counts it again (append unfreezes, so the code bytes are the
	// plain int32 slice).
	out.append("novel")
	if got := out.memBytes(); got <= int64(len(out.codes))*4 {
		t.Errorf("post-COW borrower memBytes = %d, dict no longer counted", got)
	}
}

// randomScanMicrodata builds an n-row table spanning every column type
// the chunked kernel specializes: string/int QIs (the int with negative
// values) and string/int/float confidential attributes.
func randomScanMicrodata(t testing.TB, rng *rand.Rand, n int, wide bool) *Table {
	t.Helper()
	schema := MustSchema(
		Field{Name: "A", Type: String},
		Field{Name: "B", Type: Int},
		Field{Name: "C", Type: String},
		Field{Name: "S1", Type: String},
		Field{Name: "S2", Type: Int},
		Field{Name: "S3", Type: Float},
	)
	b, err := NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	bspan := 9
	if wide {
		// Blow the packed key space past maxDenseKeySpan so the scan
		// exercises the map-indexed chunked path.
		bspan = 1 << 21
	}
	for i := 0; i < n; i++ {
		b.Append(
			SV(fmt.Sprintf("a%d", rng.Intn(7))),
			IV(int64(rng.Intn(bspan)-4)),
			SV(fmt.Sprintf("c%d", rng.Intn(5))),
			SV(fmt.Sprintf("s%d", rng.Intn(6))),
			IV(int64(rng.Intn(9)-3)),
			FV(float64(rng.Intn(4))/4),
		)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestChunkedGroupStatsMatchesRowwise is the differential test of the
// chunked kernel: on random tables spanning every specialized column
// type, dense and map-indexed key paths, and every worker count, the
// chunked scan must be deep-equal to the rowwise reference — run under
// -race by `make race`, which also makes it the serial-vs-parallel
// equivalence witness.
func TestChunkedGroupStatsMatchesRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	qiSets := [][]string{{"A"}, {"A", "B"}, {"A", "B", "C"}}
	confSets := [][]string{nil, {"S1"}, {"S1", "S2", "S3"}, {"S3"}}
	for _, wide := range []bool{false, true} {
		for trial := 0; trial < 3; trial++ {
			n := 1 + rng.Intn(5000)
			tbl := randomScanMicrodata(t, rng, n, wide)
			for _, qis := range qiSets {
				for _, conf := range confSets {
					want, err := tbl.GroupStatsRowwise(qis, conf, 1)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 2, 3, 8} {
						got, err := tbl.GroupStats(qis, conf, workers)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("wide=%v n=%d qis=%v conf=%v workers=%d: chunked and rowwise stats disagree",
								wide, n, qis, conf, workers)
						}
					}
				}
			}
		}
	}
}

// TestRemappedColumnMatchesMapped: the code-remapping fast path must
// produce the same values row-for-row as the string-materializing
// MappedColumn for every dictionary-bearing column type, and surface
// mapping errors only for values rows actually hold (a shared Gather
// dictionary may carry absent entries).
func TestRemappedColumnMatchesMapped(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tbl := randomScanMicrodata(t, rng, 800, false)
	for _, attr := range []string{"A", "B", "S3"} {
		fn := func(v Value) (string, error) { return "g:" + v.Str(), nil }
		mapped, err := tbl.MappedColumn(attr, fn)
		if err != nil {
			t.Fatal(err)
		}
		remapped, err := tbl.RemappedColumn(attr, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tbl.NumRows(); i++ {
			if !mapped.Value(i).Equal(remapped.Value(i)) {
				t.Fatalf("%s: row %d: %v != %v", attr, i, mapped.Value(i), remapped.Value(i))
			}
		}
	}
	// Errors: a value present in rows must fail either way; a value
	// only present in a borrowed dictionary must not fail the remap.
	failOn := func(bad string) func(Value) (string, error) {
		return func(v Value) (string, error) {
			if v.Str() == bad {
				return "", fmt.Errorf("no mapping")
			}
			return "g:" + v.Str(), nil
		}
	}
	present, err := tbl.Column("A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.RemappedColumn("A", failOn(present.Value(0).Str())); err == nil {
		t.Fatal("mapping error on a present value was swallowed")
	}
	sub := tbl.Filter(func(r int) bool { return present.Value(r).Str() == "a0" })
	if sub.NumRows() == 0 {
		t.Fatal("empty filter")
	}
	// sub's A column borrows the full dictionary; a1 is absent from its
	// rows, so a mapping that rejects a1 must still succeed.
	col, err := sub.RemappedColumn("A", failOn("a1"))
	if err != nil {
		t.Fatalf("mapping error on an absent dictionary value: %v", err)
	}
	for i := 0; i < sub.NumRows(); i++ {
		if col.Value(i).Str() != "g:a0" {
			t.Fatalf("row %d mapped to %q", i, col.Value(i).Str())
		}
	}
}
