package table

import (
	"fmt"
	"strings"
)

// Table is an immutable columnar relation: a schema plus one column per
// field, all of equal length. Build one with a Builder, FromRows or
// ReadCSV; derive new tables with Select, Filter, Gather and friends.
type Table struct {
	schema Schema
	cols   []Column
	nrows  int
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumCols reports the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Column returns the column with the given name.
func (t *Table) Column(name string) (Column, error) {
	i := t.schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("table: %w: %q", ErrNoColumn, name)
	}
	return t.cols[i], nil
}

// ColumnAt returns the i-th column.
func (t *Table) ColumnAt(i int) Column { return t.cols[i] }

// Value returns the cell at (row, named column).
func (t *Table) Value(row int, name string) (Value, error) {
	if row < 0 || row >= t.nrows {
		return Value{}, fmt.Errorf("table: %w: %d", ErrRowRange, row)
	}
	c, err := t.Column(name)
	if err != nil {
		return Value{}, err
	}
	return c.Value(row), nil
}

// Row materializes row i as a slice of values in schema order.
func (t *Table) Row(i int) ([]Value, error) {
	if i < 0 || i >= t.nrows {
		return nil, fmt.Errorf("table: %w: %d", ErrRowRange, i)
	}
	row := make([]Value, len(t.cols))
	for c, col := range t.cols {
		row[c] = col.Value(i)
	}
	return row, nil
}

// Select returns a new table containing only the named columns, in the
// given order. Column data is shared, not copied.
func (t *Table) Select(names ...string) (*Table, error) {
	schema, err := t.schema.Project(names)
	if err != nil {
		return nil, err
	}
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	return &Table{schema: schema, cols: cols, nrows: t.nrows}, nil
}

// Gather returns a new table holding the given rows, in order. Row
// indices may repeat.
func (t *Table) Gather(rows []int) (*Table, error) {
	for _, r := range rows {
		if r < 0 || r >= t.nrows {
			return nil, fmt.Errorf("table: %w: %d", ErrRowRange, r)
		}
	}
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Gather(rows)
	}
	return &Table{schema: t.schema, cols: cols, nrows: len(rows)}, nil
}

// Filter returns the rows for which pred returns true, as a new table.
// The predicate receives the row index and the table.
func (t *Table) Filter(pred func(row int) bool) *Table {
	var keep []int
	for i := 0; i < t.nrows; i++ {
		if pred(i) {
			keep = append(keep, i)
		}
	}
	out, err := t.Gather(keep)
	if err != nil {
		// Unreachable: indices come from the loop above.
		panic(err)
	}
	return out
}

// Head returns a table with at most the first n rows.
func (t *Table) Head(n int) *Table {
	if n > t.nrows {
		n = t.nrows
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	out, _ := t.Gather(rows)
	return out
}

// Clone performs a deep copy of the table.
func (t *Table) Clone() *Table {
	rows := make([]int, t.nrows)
	for i := range rows {
		rows[i] = i
	}
	out, _ := t.Gather(rows)
	return out
}

// MapColumn returns a new table in which the named column has been
// replaced by applying fn to every value, row by row. The result column
// is always a string column (generalization produces categorical
// labels). fn may depend on call order (several callers close over a row
// counter); use MappedColumn when fn is a pure function of the value and
// per-distinct-value memoization is wanted.
func (t *Table) MapColumn(name string, fn func(Value) (string, error)) (*Table, error) {
	idx := t.schema.Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("table: %w: %q", ErrNoColumn, name)
	}
	src := t.cols[idx]
	dst := newStringColumn()
	for i := 0; i < t.nrows; i++ {
		s, err := fn(src.Value(i))
		if err != nil {
			return nil, fmt.Errorf("table: map column %q row %d: %w", name, i, err)
		}
		dst.append(s)
	}
	dst.freeze()
	return t.WithColumn(name, dst)
}

// MappedColumn builds the string column that MapColumn would install,
// without constructing the table, and with fn applied once per distinct
// value (by code) rather than once per row. The cost is O(distinct)
// applications of fn plus O(rows) code lookups — the fast path the
// generalization cache relies on. fn must be a pure function of the
// value.
func (t *Table) MappedColumn(name string, fn func(Value) (string, error)) (Column, error) {
	idx := t.schema.Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("table: %w: %q", ErrNoColumn, name)
	}
	src := t.cols[idx]
	dst := newStringColumn()
	memo := make(map[int]string)
	for i := 0; i < t.nrows; i++ {
		code := src.Code(i)
		s, ok := memo[code]
		if !ok {
			var err error
			s, err = fn(src.Value(i))
			if err != nil {
				return nil, fmt.Errorf("table: map column %q row %d: %w", name, i, err)
			}
			memo[code] = s
		}
		dst.append(s)
	}
	dst.freeze()
	return dst, nil
}

// RemappedColumn is the columnar fast path of MappedColumn for pure
// fn: it applies fn once per dictionary entry to build a code-to-code
// remap, then translates the source's packed code stream block-wise —
// per-row work is two array lookups, and no per-row string is ever
// materialized or re-hashed. The result column holds the same values
// row-for-row as MappedColumn's; only the (externally invisible)
// dictionary order may differ, because codes are visited in source-code
// order rather than row order. Column types without a dictionary fall
// back to MappedColumn.
func (t *Table) RemappedColumn(name string, fn func(Value) (string, error)) (Column, error) {
	idx := t.schema.Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("table: %w: %q", ErrNoColumn, name)
	}
	dst := newStringColumn()
	mapErr := func(v Value, err error) error {
		return fmt.Errorf("table: map column %q value %q: %w", name, v.Str(), err)
	}
	switch src := t.cols[idx].(type) {
	case *stringColumn:
		// A shared dictionary (Gather) may hold values no row carries,
		// so fn errors are deferred per entry and surface only when a
		// row actually references the failing value — matching
		// MappedColumn, which never sees absent values.
		remap := make([]int32, len(src.dict))
		var entryErr []error
		for code, s := range src.dict {
			out, err := fn(SV(s))
			if err != nil {
				if entryErr == nil {
					entryErr = make([]error, len(src.dict))
				}
				entryErr[code] = mapErr(SV(s), err)
				remap[code] = -1
				continue
			}
			remap[code] = dst.intern(out)
		}
		dst.codes = make([]int32, 0, t.nrows)
		if src.frozen {
			scratch := make([]int32, 0, blockRows)
			for lo := 0; lo < t.nrows; lo += blockRows {
				hi := lo + blockRows
				if hi > t.nrows {
					hi = t.nrows
				}
				scratch = src.packed.appendRange32(scratch[:0], lo, hi)
				for _, code := range scratch {
					if m := remap[code]; m >= 0 {
						dst.codes = append(dst.codes, m)
					} else {
						return nil, entryErr[code]
					}
				}
			}
		} else {
			for _, code := range src.codes {
				if m := remap[code]; m >= 0 {
					dst.codes = append(dst.codes, m)
				} else {
					return nil, entryErr[code]
				}
			}
		}
	case *intColumn:
		d := src.intDict()
		remap := make([]int32, len(d.vals))
		for id, v := range d.vals {
			out, err := fn(IV(v))
			if err != nil {
				return nil, mapErr(IV(v), err)
			}
			remap[id] = dst.intern(out)
		}
		dst.codes = make([]int32, 0, t.nrows)
		if d.dense != nil {
			for _, v := range src.vals {
				dst.codes = append(dst.codes, remap[d.dense[v-d.lo]-1])
			}
		} else {
			for _, v := range src.vals {
				dst.codes = append(dst.codes, remap[d.byVal[v]])
			}
		}
	case *floatColumn:
		remap := make([]int32, len(src.dict))
		for code, f := range src.dict {
			out, err := fn(FV(f))
			if err != nil {
				return nil, mapErr(FV(f), err)
			}
			remap[code] = dst.intern(out)
		}
		dst.codes = make([]int32, 0, t.nrows)
		for _, code := range src.codes {
			dst.codes = append(dst.codes, remap[code])
		}
	default:
		return t.MappedColumn(name, fn)
	}
	dst.freeze()
	return dst, nil
}

// WithColumn returns a new table in which the named column has been
// replaced by col; every other column is shared, not copied. The column
// must have exactly one value per row. This is the cheap assembly step
// the per-level generalized-column cache uses to build a node's masked
// table from memoized columns.
func (t *Table) WithColumn(name string, col Column) (*Table, error) {
	idx := t.schema.Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("table: %w: %q", ErrNoColumn, name)
	}
	if col == nil {
		return nil, fmt.Errorf("table: nil replacement for column %q", name)
	}
	if col.Len() != t.nrows {
		return nil, fmt.Errorf("table: replacement for column %q has %d rows, want %d", name, col.Len(), t.nrows)
	}
	cols := make([]Column, len(t.cols))
	copy(cols, t.cols)
	cols[idx] = col
	fields := make([]Field, len(t.schema.Fields))
	copy(fields, t.schema.Fields)
	fields[idx].Type = col.Type()
	return &Table{schema: Schema{Fields: fields}, cols: cols, nrows: t.nrows}, nil
}

// String renders up to 20 rows as an aligned text table (for debugging
// and examples).
func (t *Table) String() string { return t.Format(20) }

// Format renders up to maxRows rows as an aligned text table.
func (t *Table) Format(maxRows int) string {
	names := t.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	n := t.nrows
	truncated := false
	if maxRows >= 0 && n > maxRows {
		n = maxRows
		truncated = true
	}
	cells := make([][]string, n)
	for r := 0; r < n; r++ {
		cells[r] = make([]string, len(t.cols))
		for c, col := range t.cols {
			s := col.Value(r).Str()
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	writeLine := func(row []string) {
		var line strings.Builder
		for c, cell := range row {
			if c > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[c], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeLine(names)
	for r := 0; r < n; r++ {
		writeLine(cells[r])
	}
	if truncated {
		fmt.Fprintf(&b, "... (%d rows total)\n", t.nrows)
	}
	return b.String()
}

// Drop returns a new table without the named columns. Dropping the
// identifier attributes (Name, SSN, ...) is the first masking step the
// paper prescribes. Unknown names are an error; dropping every column
// is rejected.
func (t *Table) Drop(names ...string) (*Table, error) {
	doomed := make(map[string]bool, len(names))
	for _, n := range names {
		if !t.schema.Has(n) {
			return nil, fmt.Errorf("table: %w: %q", ErrNoColumn, n)
		}
		doomed[n] = true
	}
	var keep []string
	for _, f := range t.schema.Fields {
		if !doomed[f.Name] {
			keep = append(keep, f.Name)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("table: %w: dropping every column", ErrEmptySchema)
	}
	return t.Select(keep...)
}

// Rename returns a new table with one column renamed. Data is shared.
func (t *Table) Rename(from, to string) (*Table, error) {
	idx := t.schema.Index(from)
	if idx < 0 {
		return nil, fmt.Errorf("table: %w: %q", ErrNoColumn, from)
	}
	fields := make([]Field, len(t.schema.Fields))
	copy(fields, t.schema.Fields)
	fields[idx].Name = to
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	return &Table{schema: schema, cols: t.cols, nrows: t.nrows}, nil
}

// Concat appends the rows of o to t. Schemas must be equal.
func (t *Table) Concat(o *Table) (*Table, error) {
	if !t.schema.Equal(o.schema) {
		return nil, fmt.Errorf("table: concat schema mismatch: %s vs %s", t.schema, o.schema)
	}
	b, err := NewBuilder(t.schema)
	if err != nil {
		return nil, err
	}
	for _, src := range []*Table{t, o} {
		for r := 0; r < src.nrows; r++ {
			row, err := src.Row(r)
			if err != nil {
				return nil, err
			}
			b.Append(row...)
		}
	}
	return b.Build()
}
