package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadCSV reads a comma-separated stream with a header row into a table.
// If schema is nil, every column is typed String and names come from the
// header. If a schema is supplied, the header must contain exactly its
// field names (order may differ; columns are matched by name).
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}

	var sch Schema
	// perm[i] is the schema position of csv column i.
	perm := make([]int, len(header))
	if schema == nil {
		fields := make([]Field, len(header))
		for i, h := range header {
			fields[i] = Field{Name: h, Type: String}
			perm[i] = i
		}
		sch, err = NewSchema(fields...)
		if err != nil {
			return nil, err
		}
	} else {
		sch = *schema
		if len(header) != sch.Len() {
			return nil, fmt.Errorf("table: csv has %d columns, schema has %d", len(header), sch.Len())
		}
		for i, h := range header {
			pos := sch.Index(h)
			if pos < 0 {
				return nil, fmt.Errorf("table: csv column %q not in schema", h)
			}
			perm[i] = pos
		}
	}

	b, err := NewBuilder(sch)
	if err != nil {
		return nil, err
	}
	row := make([]string, sch.Len())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv line %d: %w", line, err)
		}
		if len(rec) != len(perm) {
			return nil, fmt.Errorf("table: csv line %d: %w: got %d cells, want %d", line, ErrArity, len(rec), len(perm))
		}
		for i, cell := range rec {
			row[perm[i]] = strings.TrimSpace(cell)
		}
		b.AppendText(row...)
	}
	return b.Build()
}

// ReadCSVFile reads a CSV file into a table; see ReadCSV.
func ReadCSVFile(path string, schema *Schema) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, schema)
}

// WriteCSV writes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("table: write csv header: %w", err)
	}
	rec := make([]string, len(t.cols))
	for r := 0; r < t.nrows; r++ {
		for c, col := range t.cols {
			rec[c] = col.Value(r).Str()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a file, creating or truncating it.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("table: %w", err)
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
