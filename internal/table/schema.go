package table

import (
	"fmt"
	"strings"
)

// Field describes one column of a schema: its name and logical type.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields. Field names must be unique.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields and validates name uniqueness.
func NewSchema(fields ...Field) (Schema, error) {
	seen := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return Schema{}, fmt.Errorf("table: schema field with empty name")
		}
		if _, dup := seen[f.Name]; dup {
			return Schema{}, fmt.Errorf("table: duplicate schema field %q", f.Name)
		}
		seen[f.Name] = struct{}{}
	}
	return Schema{Fields: fields}, nil
}

// MustSchema is NewSchema that panics on error; intended for literals in
// tests and examples where the schema is a compile-time constant.
func MustSchema(fields ...Field) Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named field, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named field.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Names returns the field names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Len returns the number of fields.
func (s Schema) Len() int { return len(s.Fields) }

// Equal reports whether two schemas have identical fields in order.
func (s Schema) Equal(o Schema) bool {
	if len(s.Fields) != len(o.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// Project returns a schema containing only the named fields, in the
// given order.
func (s Schema) Project(names []string) (Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return Schema{}, fmt.Errorf("table: %w: %q", ErrNoColumn, n)
		}
		fields = append(fields, s.Fields[i])
	}
	return NewSchema(fields...)
}

// String renders the schema as "name:type, ...".
func (s Schema) String() string {
	var b strings.Builder
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", f.Name, f.Type)
	}
	return b.String()
}
