// Package table implements a small in-memory columnar microdata engine.
//
// It is the relational substrate for the rest of the library: schemas,
// typed dictionary-encoded columns, CSV input/output, projections,
// filters, group-by with frequency sets, distinct counts and sampling.
// Everything the paper expresses as SQL over microdata is implemented
// here (and mirrored literally by internal/minisql).
package table

import (
	"fmt"
	"strconv"
)

// Type identifies the logical type of a column or value.
type Type int

// Supported column types.
const (
	String Type = iota // categorical / free text, dictionary encoded
	Int                // 64-bit signed integer
	Float              // 64-bit float
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType converts a type name ("string", "int", "float") to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "string", "str", "text":
		return String, nil
	case "int", "integer":
		return Int, nil
	case "float", "double", "real":
		return Float, nil
	default:
		return String, fmt.Errorf("table: unknown type %q", s)
	}
}

// Value is a dynamically typed cell value. The zero Value is the empty
// string. Values are small and passed by value.
type Value struct {
	kind Type
	s    string
	i    int64
	f    float64
}

// SV constructs a string Value.
func SV(s string) Value { return Value{kind: String, s: s} }

// IV constructs an integer Value.
func IV(i int64) Value { return Value{kind: Int, i: i} }

// FV constructs a float Value.
func FV(f float64) Value { return Value{kind: Float, f: f} }

// Kind reports the type of the value.
func (v Value) Kind() Type { return v.kind }

// Str returns the string payload. For non-string values it returns the
// canonical textual rendering.
func (v Value) Str() string {
	switch v.kind {
	case String:
		return v.s
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	}
	return v.s
}

// Int returns the integer payload. Floats are truncated; strings that
// parse as integers are converted; otherwise 0 is returned.
func (v Value) Int() int64 {
	switch v.kind {
	case Int:
		return v.i
	case Float:
		return int64(v.f)
	case String:
		n, err := strconv.ParseInt(v.s, 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
	return 0
}

// Float returns the float payload, converting ints and numeric strings.
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	case String:
		f, err := strconv.ParseFloat(v.s, 64)
		if err != nil {
			return 0
		}
		return f
	}
	return 0
}

// Equal reports whether two values are equal. Values of different kinds
// are compared numerically when both are numeric, textually otherwise.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// Numeric kinds compare numerically (Int vs Float is allowed); string
// comparisons are lexicographic. Mixed string/numeric comparisons fall
// back to the textual rendering.
func (v Value) Compare(o Value) int {
	if v.kind == Int && o.kind == Int {
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	}
	if (v.kind == Int || v.kind == Float) && (o.kind == Int || o.kind == Float) {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	a, b := v.Str(), o.Str()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String implements fmt.Stringer.
func (v Value) String() string { return v.Str() }
