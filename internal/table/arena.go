package table

import "sync"

// blockRows is the unit of the chunked scan kernels: group-by and
// group-stats pull codes out of the packed columns one block at a time,
// so the per-row cost is array arithmetic instead of an interface call,
// and all scratch stays in a few cache-resident slices.
const blockRows = 4096

// Dense-structure caps for the chunked kernels. A key span within
// maxDenseKeySpan uses a flat key→group table (16 MiB of int32 at the
// cap) instead of a hash map; a summed confidential cardinality within
// maxDenseHistWidth accumulates histograms in a flat per-group slab.
const (
	maxDenseKeySpan   = 1 << 22
	maxDenseHistWidth = 1 << 16
)

// statsArena is the reusable scratch of one chunked scan: block
// buffers, the key→group index (dense table or map), the per-group
// histogram slab, and the discovered group keys. Scans borrow an arena
// from a package-level pool and return it when done, so a lattice
// search that runs many base scans — and the shards of one parallel
// scan — allocate this memory once, not per node.
//
// Every structure is left zeroed/cleared on release, which is what
// makes acquisition O(1): keyTable and hist are known-zero, idx is
// known-empty.
type statsArena struct {
	keys    []uint64 // packed key per row of the current block
	gids    []int32  // group id per row of the current block
	scratch []int32  // per-column code extraction buffer
	ids     []int32  // per-row confidential ids of the current block

	keyTable []int32  // packed key -> group id + 1 (0 = absent)
	idx      map[uint64]int32
	gkeys    []uint64 // packed key of each discovered group, in order
	hist     []int32  // group-major histogram slab, width histStride
	sizes    []int32  // per-group row count (chunked stats kernel)
	reps     []int32  // per-group representative row (ditto)
}

var statsArenaPool = sync.Pool{New: func() any {
	return &statsArena{
		keys:    make([]uint64, blockRows),
		gids:    make([]int32, blockRows),
		scratch: make([]int32, 0, blockRows),
		ids:     make([]int32, 0, blockRows),
		idx:     make(map[uint64]int32),
	}
}}

func getStatsArena() *statsArena { return statsArenaPool.Get().(*statsArena) }

// release re-zeroes what the scan dirtied and returns the arena to the
// pool. keyTable is cleared through gkeys (O(groups), not O(span)).
func (a *statsArena) release() {
	for _, k := range a.gkeys {
		if int(k) < len(a.keyTable) {
			a.keyTable[k] = 0
		}
	}
	a.gkeys = a.gkeys[:0]
	for i := range a.hist {
		a.hist[i] = 0
	}
	a.hist = a.hist[:0]
	a.sizes = a.sizes[:0]
	a.reps = a.reps[:0]
	clear(a.idx)
	statsArenaPool.Put(a)
}

// ensureKeyTable makes the dense key table at least span long (zeroed).
func (a *statsArena) ensureKeyTable(span int) {
	if len(a.keyTable) < span {
		a.keyTable = make([]int32, span)
	}
}

// growHist extends the histogram slab to n entries. Newly exposed
// entries are zero: fresh allocations are zeroed by the runtime, and
// release() re-zeroes everything it exposed before pooling.
func (a *statsArena) growHist(n int) {
	if n <= len(a.hist) {
		return
	}
	if n <= cap(a.hist) {
		a.hist = a.hist[:n]
		return
	}
	grown := make([]int32, n, 2*n)
	copy(grown, a.hist)
	a.hist = grown
}
