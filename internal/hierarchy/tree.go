package hierarchy

import (
	"fmt"
	"sort"
	"strings"
)

// Tree is an explicit value generalization hierarchy for categorical
// attributes: each ground value has a fixed chain of ancestors, one per
// level. It models Table 7's MaritalStatus and Race hierarchies.
type Tree struct {
	attr   string
	height int
	// chain[value][level-1] is the label of value at that level.
	chain map[string][]string
	names []string // level names, may be empty
}

// Hard limits on hierarchy construction. Hierarchies arrive from
// user-supplied files (ParseTree via job configs), so the constructors
// must hold up against hostile input: the caps below bound the memory
// and time any accepted hierarchy can cost, and the fuzz targets
// exercise everything under them.
const (
	// MaxTreeHeight caps chain length: a lattice dimension beyond this
	// is a config error, not a usable hierarchy.
	MaxTreeHeight = 64
	// MaxTreeValues caps the ground domain size of one tree.
	MaxTreeValues = 1 << 20
	// MaxLabelLen caps one value or label, in bytes.
	MaxLabelLen = 1 << 10
	// MaxParseBytes caps the text ParseTree accepts.
	MaxParseBytes = 16 << 20
)

// NewTree builds a tree hierarchy from per-value ancestor chains: rows
// maps each ground value to its labels at levels 1..height. All chains
// must have the same length, and the hierarchy must be consistent: two
// values with equal labels at level i must have equal labels at every
// level above i (otherwise generalization would not be a function on
// domains). Chains must also be cycle-free: once a chain generalizes
// away from a label, the label may not reappear at a higher level
// (A -> B -> A would make "more general" meaningless), though a label
// may persist across consecutive levels (White -> White -> *, as in
// the paper's Race hierarchy).
func NewTree(attr string, rows map[string][]string) (*Tree, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("hierarchy: %s: empty tree hierarchy", attr)
	}
	if len(rows) > MaxTreeValues {
		return nil, fmt.Errorf("hierarchy: %s: %d ground values exceeds the cap %d", attr, len(rows), MaxTreeValues)
	}
	height := -1
	for v, chain := range rows {
		if len(v) > MaxLabelLen {
			return nil, fmt.Errorf("hierarchy: %s: ground value of %d bytes exceeds the cap %d", attr, len(v), MaxLabelLen)
		}
		if height == -1 {
			height = len(chain)
		} else if len(chain) != height {
			return nil, fmt.Errorf("hierarchy: %s: value %q has chain length %d, want %d",
				attr, v, len(chain), height)
		}
		for lvl, label := range chain {
			if len(label) > MaxLabelLen {
				return nil, fmt.Errorf("hierarchy: %s: value %q level %d label of %d bytes exceeds the cap %d",
					attr, v, lvl+1, len(label), MaxLabelLen)
			}
		}
	}
	if height == 0 {
		return nil, fmt.Errorf("hierarchy: %s: tree hierarchy needs at least one level", attr)
	}
	if height > MaxTreeHeight {
		return nil, fmt.Errorf("hierarchy: %s: height %d exceeds the cap %d", attr, height, MaxTreeHeight)
	}
	// Cycle check: walking up one chain, a label left behind must not
	// recur (runs of the same label are generalization standing still,
	// which is fine; returning to an earlier label is not).
	for v, chain := range rows {
		left := make(map[string]bool, height)
		prev := v
		for _, label := range chain {
			if label == prev {
				continue
			}
			left[prev] = true
			if left[label] {
				return nil, fmt.Errorf("hierarchy: %s: value %q returns to label %q after generalizing away from it",
					attr, v, label)
			}
			prev = label
		}
	}
	// Consistency: label at level i determines label at level i+1.
	for lvl := 0; lvl < height-1; lvl++ {
		parent := make(map[string]string)
		for v, chain := range rows {
			if up, ok := parent[chain[lvl]]; ok {
				if up != chain[lvl+1] {
					return nil, fmt.Errorf("hierarchy: %s: label %q at level %d maps to both %q and %q at level %d (value %q)",
						attr, chain[lvl], lvl+1, up, chain[lvl+1], lvl+2, v)
				}
			} else {
				parent[chain[lvl]] = chain[lvl+1]
			}
		}
	}
	cp := make(map[string][]string, len(rows))
	for v, chain := range rows {
		cc := make([]string, len(chain))
		copy(cc, chain)
		cp[v] = cc
	}
	return &Tree{attr: attr, height: height, chain: cp}, nil
}

// WithLevelNames attaches names to levels 1..Height and returns the
// receiver for chaining.
func (t *Tree) WithLevelNames(names ...string) *Tree {
	t.names = names
	return t
}

// Attribute implements Hierarchy.
func (t *Tree) Attribute() string { return t.attr }

// Height implements Hierarchy.
func (t *Tree) Height() int { return t.height }

// Generalize implements Hierarchy.
func (t *Tree) Generalize(value string, level int) (string, error) {
	if err := checkLevel(t.attr, level, t.height); err != nil {
		return "", err
	}
	if level == 0 {
		return value, nil
	}
	chain, ok := t.chain[value]
	if !ok {
		return "", fmt.Errorf("hierarchy: %s: unknown value %q", t.attr, value)
	}
	return chain[level-1], nil
}

// LevelName implements Hierarchy.
func (t *Tree) LevelName(level int) string {
	if level == 0 {
		return "ground"
	}
	if level-1 < len(t.names) {
		return t.names[level-1]
	}
	return fmt.Sprintf("level %d", level)
}

// GroundValues returns the sorted ground domain of the tree.
func (t *Tree) GroundValues() []string {
	vals := make([]string, 0, len(t.chain))
	for v := range t.chain {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// DomainSize returns the number of distinct labels at the given level
// (level 0 = ground domain size). Unknown levels return 0.
func (t *Tree) DomainSize(level int) int {
	if level < 0 || level > t.height {
		return 0
	}
	if level == 0 {
		return len(t.chain)
	}
	seen := make(map[string]struct{})
	for _, chain := range t.chain {
		seen[chain[level-1]] = struct{}{}
	}
	return len(seen)
}

// ParseTree parses the common semicolon-separated hierarchy file format
// (one line per ground value: value;level1;level2;...), as used by ARX
// and similar tools. Blank lines and lines starting with '#' are
// skipped. The text is capped at MaxParseBytes, and ground values must
// be non-empty (an empty value cannot appear in microdata and usually
// signals a stray separator).
func ParseTree(attr, text string) (*Tree, error) {
	if len(text) > MaxParseBytes {
		return nil, fmt.Errorf("hierarchy: %s: %d bytes of hierarchy text exceeds the cap %d", attr, len(text), MaxParseBytes)
	}
	rows := make(map[string][]string)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ";")
		if len(parts) < 2 {
			return nil, fmt.Errorf("hierarchy: %s: line %d needs at least value;level1", attr, ln+1)
		}
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		if parts[0] == "" {
			return nil, fmt.Errorf("hierarchy: %s: line %d: empty ground value", attr, ln+1)
		}
		if _, dup := rows[parts[0]]; dup {
			return nil, fmt.Errorf("hierarchy: %s: line %d: duplicate ground value %q", attr, ln+1, parts[0])
		}
		rows[parts[0]] = parts[1:]
	}
	return NewTree(attr, rows)
}
