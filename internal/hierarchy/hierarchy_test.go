package hierarchy

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// TestFigure1ZipCodePrefix reproduces the paper's Figure 1 ZipCode VGH:
// Z0 = {41075,41076,41088,41099}, Z1 = 4107*/4108*/4109*, Z2 = 410**.
func TestFigure1ZipCodePrefix(t *testing.T) {
	p, err := NewPrefix("ZipCode", 5, 2)
	if err != nil {
		t.Fatalf("NewPrefix: %v", err)
	}
	cases := []struct {
		value string
		level int
		want  string
	}{
		{"41075", 0, "41075"},
		{"41075", 1, "4107*"},
		{"41076", 1, "4107*"},
		{"41088", 1, "4108*"},
		{"41099", 1, "4109*"},
		{"41075", 2, "410**"},
		{"41099", 2, "410**"},
	}
	for _, c := range cases {
		got, err := p.Generalize(c.value, c.level)
		if err != nil || got != c.want {
			t.Errorf("Generalize(%q, %d) = %q, %v; want %q", c.value, c.level, got, err, c.want)
		}
	}
	if p.Height() != 2 {
		t.Errorf("Height = %d, want 2", p.Height())
	}
}

func TestPrefixErrors(t *testing.T) {
	if _, err := NewPrefix("Z", 0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewPrefix("Z", 5, 6); err == nil {
		t.Error("steps > width accepted")
	}
	if _, err := NewPrefix("Z", 5, 0); err == nil {
		t.Error("zero steps accepted")
	}
	p, _ := NewPrefix("Z", 5, 2)
	if _, err := p.Generalize("123", 1); err == nil {
		t.Error("wrong-width value accepted")
	}
	if _, err := p.Generalize("12345", 3); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := p.Generalize("12345", -1); err == nil {
		t.Error("negative level accepted")
	}
}

// TestFigure1SexFlat reproduces the Sex hierarchy: S0={M,F}, S1=Person.
func TestFigure1SexFlat(t *testing.T) {
	f := NewFlat("Sex")
	f.Top = "Person"
	for _, v := range []string{"M", "F"} {
		got, err := f.Generalize(v, 1)
		if err != nil || got != "Person" {
			t.Errorf("Generalize(%q,1) = %q, %v", v, got, err)
		}
		got, err = f.Generalize(v, 0)
		if err != nil || got != v {
			t.Errorf("Generalize(%q,0) = %q, %v", v, got, err)
		}
	}
	plain := NewFlat("X")
	got, _ := plain.Generalize("anything", 1)
	if got != Suppressed {
		t.Errorf("default top = %q, want %q", got, Suppressed)
	}
	if plain.Height() != 1 {
		t.Errorf("Height = %d", plain.Height())
	}
	if _, err := plain.Generalize("x", 2); err == nil {
		t.Error("level 2 accepted on flat hierarchy")
	}
	if plain.LevelName(0) != "ground" || plain.LevelName(1) == "" {
		t.Error("LevelName broken")
	}
}

// TestTable7AgeInterval reproduces Table 7's Age hierarchy: 10-year
// ranges, then <50 / >=50, then one group.
func TestTable7AgeInterval(t *testing.T) {
	h, err := NewInterval("Age", []IntervalLevel{
		DecadeLevel("10-years ranges", 17, 90, 10),
		{Name: "<50 and >=50 groups", Cuts: []int64{50}, Labels: []string{"<50", ">=50"}},
		{Name: "one group", Cuts: nil, Labels: []string{Suppressed}},
	})
	if err != nil {
		t.Fatalf("NewInterval: %v", err)
	}
	if h.Height() != 3 {
		t.Fatalf("Height = %d, want 3", h.Height())
	}
	cases := []struct {
		value string
		level int
		want  string
	}{
		{"17", 1, "10-19"},
		{"29", 1, "20-29"},
		{"50", 1, "50-59"},
		{"90", 1, "90-99"},
		{"49", 2, "<50"},
		{"50", 2, ">=50"},
		{"90", 2, ">=50"},
		{"17", 3, "*"},
		{"42", 0, "42"},
	}
	for _, c := range cases {
		got, err := h.Generalize(c.value, c.level)
		if err != nil || got != c.want {
			t.Errorf("Generalize(%q,%d) = %q, %v; want %q", c.value, c.level, got, err, c.want)
		}
	}
}

func TestIntervalValidation(t *testing.T) {
	// Non-increasing cuts.
	if _, err := NewInterval("X", []IntervalLevel{{Cuts: []int64{5, 5}}}); err == nil {
		t.Error("non-increasing cuts accepted")
	}
	// Level 2 cut not present in level 1: not a coarsening.
	if _, err := NewInterval("X", []IntervalLevel{
		{Cuts: []int64{10, 20}},
		{Cuts: []int64{15}},
	}); err == nil {
		t.Error("non-coarsening level accepted")
	}
	// Coarsening is fine.
	if _, err := NewInterval("X", []IntervalLevel{
		{Cuts: []int64{10, 20}},
		{Cuts: []int64{20}},
	}); err != nil {
		t.Errorf("valid coarsening rejected: %v", err)
	}
	// Label arity mismatch.
	if _, err := NewInterval("X", []IntervalLevel{
		{Cuts: []int64{10}, Labels: []string{"only-one"}},
	}); err == nil {
		t.Error("label arity mismatch accepted")
	}
	// Empty hierarchy.
	if _, err := NewInterval("X", nil); err == nil {
		t.Error("empty interval hierarchy accepted")
	}
	h, _ := NewInterval("X", []IntervalLevel{{Cuts: []int64{10}}})
	if _, err := h.Generalize("not-a-number", 1); err == nil {
		t.Error("non-numeric value accepted")
	}
	got, _ := h.Generalize("3", 1)
	if got != "<10" {
		t.Errorf("derived label = %q, want <10", got)
	}
	got, _ = h.Generalize("10", 1)
	if got != ">=10" {
		t.Errorf("derived label = %q, want >=10", got)
	}
	if h.LevelName(0) != "ground" || h.LevelName(1) != "level 1" {
		t.Error("LevelName broken")
	}
}

func TestDecadeLevelCoversRange(t *testing.T) {
	l := DecadeLevel("d", 17, 90, 10)
	// 17..90 spans buckets 10-19 .. 90-99: 9 buckets, 8 cuts.
	if len(l.Cuts) != 8 || len(l.Labels) != 9 {
		t.Errorf("cuts=%d labels=%d, want 8/9", len(l.Cuts), len(l.Labels))
	}
	if l.Labels[0] != "10-19" || l.Labels[8] != "90-99" {
		t.Errorf("labels = %v", l.Labels)
	}
}

// maritalTree builds Table 7's MaritalStatus hierarchy: 7 ground values
// -> {Single, Married} -> one group.
func maritalTree(t *testing.T) *Tree {
	t.Helper()
	tree, err := NewTree("MaritalStatus", map[string][]string{
		"Never-married":         {"Single", Suppressed},
		"Divorced":              {"Single", Suppressed},
		"Separated":             {"Single", Suppressed},
		"Widowed":               {"Single", Suppressed},
		"Married-civ-spouse":    {"Married", Suppressed},
		"Married-spouse-absent": {"Married", Suppressed},
		"Married-AF-spouse":     {"Married", Suppressed},
	})
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tree
}

func TestTable7MaritalTree(t *testing.T) {
	tree := maritalTree(t)
	if tree.Height() != 2 {
		t.Fatalf("Height = %d, want 2", tree.Height())
	}
	got, err := tree.Generalize("Divorced", 1)
	if err != nil || got != "Single" {
		t.Errorf("Divorced@1 = %q, %v", got, err)
	}
	got, _ = tree.Generalize("Married-AF-spouse", 1)
	if got != "Married" {
		t.Errorf("Married-AF-spouse@1 = %q", got)
	}
	got, _ = tree.Generalize("Widowed", 2)
	if got != Suppressed {
		t.Errorf("Widowed@2 = %q", got)
	}
	if _, err := tree.Generalize("Unknown", 1); err == nil {
		t.Error("unknown ground value accepted")
	}
	if tree.DomainSize(0) != 7 || tree.DomainSize(1) != 2 || tree.DomainSize(2) != 1 {
		t.Errorf("DomainSizes = %d/%d/%d, want 7/2/1",
			tree.DomainSize(0), tree.DomainSize(1), tree.DomainSize(2))
	}
	if tree.DomainSize(3) != 0 || tree.DomainSize(-1) != 0 {
		t.Error("out-of-range DomainSize should be 0")
	}
	gv := tree.GroundValues()
	if len(gv) != 7 || gv[0] != "Divorced" {
		t.Errorf("GroundValues = %v", gv)
	}
}

func TestTreeValidation(t *testing.T) {
	// Chains of unequal length.
	if _, err := NewTree("X", map[string][]string{
		"a": {"g1", "top"},
		"b": {"g1"},
	}); err == nil {
		t.Error("unequal chain lengths accepted")
	}
	// Inconsistent: same level-1 label, different level-2 labels.
	if _, err := NewTree("X", map[string][]string{
		"a": {"g1", "t1"},
		"b": {"g1", "t2"},
	}); err == nil {
		t.Error("inconsistent tree accepted")
	}
	// Empty.
	if _, err := NewTree("X", map[string][]string{}); err == nil {
		t.Error("empty tree accepted")
	}
	if _, err := NewTree("X", map[string][]string{"a": {}}); err == nil {
		t.Error("zero-height tree accepted")
	}
}

func TestTreeLevelNames(t *testing.T) {
	tree := maritalTree(t).WithLevelNames("Single or Married", "One group")
	if tree.LevelName(1) != "Single or Married" || tree.LevelName(2) != "One group" {
		t.Error("WithLevelNames broken")
	}
	if tree.LevelName(0) != "ground" {
		t.Error("level 0 name")
	}
}

func TestParseTree(t *testing.T) {
	text := `
# race hierarchy (Table 7)
White;White;White;*
Black;Black;Other;*
Asian-Pac-Islander;Other;Other;*
Amer-Indian-Eskimo;Other;Other;*
Other;Other;Other;*
`
	tree, err := ParseTree("Race", text)
	if err != nil {
		t.Fatalf("ParseTree: %v", err)
	}
	if tree.Height() != 3 {
		t.Fatalf("Height = %d, want 3", tree.Height())
	}
	got, _ := tree.Generalize("Black", 1)
	if got != "Black" {
		t.Errorf("Black@1 = %q", got)
	}
	got, _ = tree.Generalize("Black", 2)
	if got != "Other" {
		t.Errorf("Black@2 = %q", got)
	}
	if tree.DomainSize(1) != 3 || tree.DomainSize(2) != 2 {
		t.Errorf("domain sizes %d/%d, want 3/2", tree.DomainSize(1), tree.DomainSize(2))
	}

	if _, err := ParseTree("X", "onlyvalue\n"); err == nil {
		t.Error("line without levels accepted")
	}
	if _, err := ParseTree("X", "a;b\na;c\n"); err == nil {
		t.Error("duplicate ground value accepted")
	}
}

func TestSet(t *testing.T) {
	zip, _ := NewPrefix("ZipCode", 5, 2)
	sex := NewFlat("Sex")
	s, err := NewSet(zip, sex)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	if !s.Has("ZipCode") || s.Has("Age") {
		t.Error("Has broken")
	}
	if _, err := s.Get("Age"); err == nil {
		t.Error("Get of missing attribute should fail")
	}
	attrs := s.Attributes()
	if len(attrs) != 2 || attrs[0] != "Sex" {
		t.Errorf("Attributes = %v", attrs)
	}
	hts, err := s.Heights([]string{"Sex", "ZipCode"})
	if err != nil || hts[0] != 1 || hts[1] != 2 {
		t.Errorf("Heights = %v, %v", hts, err)
	}
	if _, err := s.Heights([]string{"Missing"}); err == nil {
		t.Error("Heights of missing attribute should fail")
	}
	// Duplicates rejected.
	if _, err := NewSet(zip, zip); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSet(nil); err == nil {
		t.Error("nil hierarchy accepted")
	}
}

func TestSetValidate(t *testing.T) {
	zip, _ := NewPrefix("ZipCode", 5, 2)
	s := MustSet(zip, NewFlat("Sex"))
	err := s.Validate(map[string][]string{
		"ZipCode": {"41075", "41076", "43102"},
		"Sex":     {"M", "F"},
	})
	if err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Wrong-width zip fails validation.
	if err := s.Validate(map[string][]string{"ZipCode": {"123"}}); err == nil {
		t.Error("invalid ground value passed validation")
	}
	// Missing hierarchy.
	if err := s.Validate(map[string][]string{"Age": {"1"}}); err == nil {
		t.Error("missing hierarchy passed validation")
	}
}

func TestSetValidateDetectsInconsistency(t *testing.T) {
	// An adversarial hierarchy that violates monotone coarsening:
	// values a,b share level-1 label but diverge at level 2.
	bad := &inconsistentHierarchy{}
	s := MustSet(bad)
	if err := s.Validate(map[string][]string{"Bad": {"a", "b"}}); err == nil {
		t.Error("inconsistent hierarchy passed validation")
	}
	if !strings.Contains(s.Attributes()[0], "Bad") {
		t.Error("attribute registration broken")
	}
}

type inconsistentHierarchy struct{}

func (inconsistentHierarchy) Attribute() string { return "Bad" }
func (inconsistentHierarchy) Height() int       { return 2 }
func (inconsistentHierarchy) Generalize(v string, level int) (string, error) {
	switch level {
	case 0:
		return v, nil
	case 1:
		return "same", nil
	default:
		return "top-" + v, nil // diverges: not a function of level-1 label
	}
}
func (inconsistentHierarchy) LevelName(level int) string { return "L" }

// TestIntervalMonotoneCoarseningProperty: for random valid interval
// hierarchies, two values sharing a level-i bucket always share the
// level-i+1 bucket (the generalization-tree property Set.Validate
// enforces), checked over random values.
func TestIntervalMonotoneCoarseningProperty(t *testing.T) {
	f := func(seedRaw int64, nCuts uint8, span uint8) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		hi := int64(span)%80 + 20
		// Level 1: random strictly increasing cuts in (0, hi).
		k := int(nCuts)%6 + 1
		cutSet := make(map[int64]bool)
		for len(cutSet) < k {
			cutSet[rng.Int63n(hi-1)+1] = true
		}
		cuts1 := make([]int64, 0, k)
		for c := range cutSet {
			cuts1 = append(cuts1, c)
		}
		sort.Slice(cuts1, func(a, b int) bool { return cuts1[a] < cuts1[b] })
		// Level 2: a random subset of level 1's cuts (coarsening).
		var cuts2 []int64
		for _, c := range cuts1 {
			if rng.Intn(2) == 0 {
				cuts2 = append(cuts2, c)
			}
		}
		h, err := NewInterval("X", []IntervalLevel{
			{Cuts: cuts1},
			{Cuts: cuts2},
		})
		if err != nil {
			return false
		}
		// Sample values; equal level-1 labels must imply equal level-2
		// labels.
		byL1 := make(map[string]string)
		for i := 0; i < 60; i++ {
			v := IVStr(rng.Int63n(hi + 10))
			l1, err1 := h.Generalize(v, 1)
			l2, err2 := h.Generalize(v, 2)
			if err1 != nil || err2 != nil {
				return false
			}
			if prev, ok := byL1[l1]; ok && prev != l2 {
				return false
			}
			byL1[l1] = l2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// IVStr formats an int like the table engine would.
func IVStr(v int64) string { return strconv.FormatInt(v, 10) }

// TestPrefixStepsMonotoneProperty: deeper suppression levels always
// merge (never split) the partition induced by shallower levels.
func TestPrefixStepsMonotoneProperty(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		h, err := NewPrefixSteps("Z", 5, []int{1 + rng.Intn(2), 3 + rng.Intn(3)})
		if err != nil {
			return false
		}
		byL1 := make(map[string]string)
		for i := 0; i < 50; i++ {
			v := fmt.Sprintf("%05d", rng.Intn(100000))
			l1, err1 := h.Generalize(v, 1)
			l2, err2 := h.Generalize(v, 2)
			if err1 != nil || err2 != nil {
				return false
			}
			if prev, ok := byL1[l1]; ok && prev != l2 {
				return false
			}
			byL1[l1] = l2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
