package hierarchy

import (
	"fmt"
	"sort"
	"strconv"
)

// IntervalLevel is one domain of a numeric hierarchy: a set of cut
// points partitioning the integer line into labeled ranges. A value v
// falls into bucket i when Cuts[i-1] <= v < Cuts[i] (with open ends).
type IntervalLevel struct {
	// Name of the domain, e.g. "10-year ranges".
	Name string
	// Cuts are strictly increasing interior cut points. k cuts induce
	// k+1 buckets. Empty cuts means a single all-covering group.
	Cuts []int64
	// Labels optionally names each bucket; when empty, labels are
	// derived as "[lo-hi)" style ranges.
	Labels []string
}

// bucket returns the bucket index for v.
func (l IntervalLevel) bucket(v int64) int {
	// First cut strictly greater than v.
	return sort.Search(len(l.Cuts), func(i int) bool { return v < l.Cuts[i] })
}

// label renders the label of bucket i.
func (l IntervalLevel) label(i int) string {
	if len(l.Labels) > 0 {
		return l.Labels[i]
	}
	if len(l.Cuts) == 0 {
		return Suppressed
	}
	switch {
	case i == 0:
		return fmt.Sprintf("<%d", l.Cuts[0])
	case i == len(l.Cuts):
		return fmt.Sprintf(">=%d", l.Cuts[len(l.Cuts)-1])
	default:
		return fmt.Sprintf("%d-%d", l.Cuts[i-1], l.Cuts[i]-1)
	}
}

// Interval is a numeric generalization hierarchy: an ordered list of
// interval levels, each at least as coarse as the previous. It models
// the paper's Age hierarchy of Table 7 (10-year ranges, then <50 / >=50,
// then one group).
type Interval struct {
	attr   string
	levels []IntervalLevel
}

// NewInterval builds a numeric hierarchy and validates that each level
// is a coarsening of the previous: every cut at level i+1 must also be a
// cut at level i, which guarantees the generalization tree property
// (same level-i bucket implies same level-i+1 bucket).
func NewInterval(attr string, levels []IntervalLevel) (*Interval, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("hierarchy: %s: interval hierarchy needs at least one level", attr)
	}
	for li, l := range levels {
		for i := 1; i < len(l.Cuts); i++ {
			if l.Cuts[i] <= l.Cuts[i-1] {
				return nil, fmt.Errorf("hierarchy: %s: level %d cuts not strictly increasing", attr, li+1)
			}
		}
		if len(l.Labels) > 0 && len(l.Labels) != len(l.Cuts)+1 {
			return nil, fmt.Errorf("hierarchy: %s: level %d has %d labels for %d buckets",
				attr, li+1, len(l.Labels), len(l.Cuts)+1)
		}
	}
	for li := 1; li < len(levels); li++ {
		prev := make(map[int64]bool, len(levels[li-1].Cuts))
		for _, c := range levels[li-1].Cuts {
			prev[c] = true
		}
		for _, c := range levels[li].Cuts {
			if !prev[c] {
				return nil, fmt.Errorf("hierarchy: %s: level %d cut %d is not a cut of level %d (not a coarsening)",
					attr, li+1, c, li)
			}
		}
	}
	return &Interval{attr: attr, levels: levels}, nil
}

// Attribute implements Hierarchy.
func (h *Interval) Attribute() string { return h.attr }

// Height implements Hierarchy.
func (h *Interval) Height() int { return len(h.levels) }

// Generalize implements Hierarchy. Values must parse as integers.
func (h *Interval) Generalize(value string, level int) (string, error) {
	if err := checkLevel(h.attr, level, len(h.levels)); err != nil {
		return "", err
	}
	if level == 0 {
		return value, nil
	}
	v, err := strconv.ParseInt(value, 10, 64)
	if err != nil {
		return "", fmt.Errorf("hierarchy: %s: value %q is not an integer", h.attr, value)
	}
	l := h.levels[level-1]
	return l.label(l.bucket(v)), nil
}

// LevelName implements Hierarchy.
func (h *Interval) LevelName(level int) string {
	if level == 0 {
		return "ground"
	}
	if h.levels[level-1].Name != "" {
		return h.levels[level-1].Name
	}
	return fmt.Sprintf("level %d", level)
}

// DecadeLevel builds an interval level of fixed-width buckets covering
// [lo, hi], labeled "lo-lo+width-1". Used for the paper's "10-years
// ranges" Age generalization.
func DecadeLevel(name string, lo, hi, width int64) IntervalLevel {
	var cuts []int64
	var labels []string
	start := lo - lo%width
	if lo < 0 && lo%width != 0 {
		start -= width
	}
	labels = append(labels, fmt.Sprintf("%d-%d", start, start+width-1))
	for c := start + width; c <= hi; c += width {
		cuts = append(cuts, c)
		labels = append(labels, fmt.Sprintf("%d-%d", c, c+width-1))
	}
	return IntervalLevel{Name: name, Cuts: cuts, Labels: labels}
}
