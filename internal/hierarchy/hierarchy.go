// Package hierarchy implements domain and value generalization
// hierarchies (DGH/VGH) in the sense of Samarati and Sweeney, as used by
// the p-sensitive k-anonymity paper (Figure 1, Table 7).
//
// A hierarchy for an attribute is an ordered chain of domains
// D0 < D1 < ... < Dh where D0 is the ground domain and each step maps
// every value to a coarser label. Level 0 is always the identity.
// Implementations cover the three shapes the literature uses:
//
//   - Tree: an explicit value generalization tree (categorical data,
//     e.g. MaritalStatus -> {Single, Married} -> *).
//   - Prefix: digit-suppression hierarchies for code-like values
//     (ZipCode 43102 -> 4310* -> 431** -> ...).
//   - Interval: numeric bucketing with per-level cut points
//     (Age -> 10-year ranges -> {<50, >=50} -> *).
//   - Flat: a single generalization step to one group ("*"), the
//     degenerate hierarchy used for Sex.
package hierarchy

import (
	"fmt"
)

// Suppressed is the conventional label of the one-group top domain.
const Suppressed = "*"

// Hierarchy maps ground values of one attribute to generalized labels at
// each level of its domain generalization hierarchy.
type Hierarchy interface {
	// Attribute returns the attribute name this hierarchy applies to.
	Attribute() string
	// Height returns the number of generalization steps: valid levels
	// are 0 (identity) through Height inclusive.
	Height() int
	// Generalize maps a ground value to its label at the given level.
	// Level 0 returns the value unchanged. An error is returned for
	// unknown values (trees) or out-of-range levels.
	Generalize(value string, level int) (string, error)
	// LevelName returns a human-readable name for a domain level, e.g.
	// "Z2" or "10-year ranges".
	LevelName(level int) string
}

// checkLevel validates a level against a height.
func checkLevel(attr string, level, height int) error {
	if level < 0 || level > height {
		return fmt.Errorf("hierarchy: %s: level %d out of range [0,%d]", attr, level, height)
	}
	return nil
}

// Flat is the degenerate hierarchy with one generalization step mapping
// every value to Suppressed. Used for attributes like Sex.
type Flat struct {
	Attr string
	// Top is the label of the single group; defaults to Suppressed.
	Top string
}

// NewFlat builds a Flat hierarchy for the attribute.
func NewFlat(attr string) *Flat { return &Flat{Attr: attr} }

// Attribute implements Hierarchy.
func (f *Flat) Attribute() string { return f.Attr }

// Height implements Hierarchy: one step.
func (f *Flat) Height() int { return 1 }

// Generalize implements Hierarchy.
func (f *Flat) Generalize(value string, level int) (string, error) {
	if err := checkLevel(f.Attr, level, 1); err != nil {
		return "", err
	}
	if level == 0 {
		return value, nil
	}
	if f.Top != "" {
		return f.Top, nil
	}
	return Suppressed, nil
}

// LevelName implements Hierarchy.
func (f *Flat) LevelName(level int) string {
	if level == 0 {
		return "ground"
	}
	return "one group"
}

// Prefix is a digit/character-suppression hierarchy: level i replaces
// the last i characters of the value with '*'. It models the paper's
// ZipCode hierarchy of Figure 1 (Z0=43102, Z1=4310*, Z2=431**, ...).
type Prefix struct {
	Attr string
	// Width is the expected value length; values of other lengths are
	// rejected so that levels line up across all values.
	Width int
	// Steps is how many suppression levels exist (<= Width). The paper's
	// Figure 1 uses 2 steps for 5-digit zips; a full hierarchy would use
	// Width steps.
	Steps int
}

// NewPrefix builds a Prefix hierarchy for fixed-width values.
func NewPrefix(attr string, width, steps int) (*Prefix, error) {
	if width <= 0 {
		return nil, fmt.Errorf("hierarchy: %s: width must be positive, got %d", attr, width)
	}
	if steps <= 0 || steps > width {
		return nil, fmt.Errorf("hierarchy: %s: steps %d out of range [1,%d]", attr, steps, width)
	}
	return &Prefix{Attr: attr, Width: width, Steps: steps}, nil
}

// Attribute implements Hierarchy.
func (p *Prefix) Attribute() string { return p.Attr }

// Height implements Hierarchy.
func (p *Prefix) Height() int { return p.Steps }

// Generalize implements Hierarchy.
func (p *Prefix) Generalize(value string, level int) (string, error) {
	if err := checkLevel(p.Attr, level, p.Steps); err != nil {
		return "", err
	}
	if len(value) != p.Width {
		return "", fmt.Errorf("hierarchy: %s: value %q is not %d characters", p.Attr, value, p.Width)
	}
	if level == 0 {
		return value, nil
	}
	keep := p.Width - level
	out := make([]byte, p.Width)
	copy(out, value[:keep])
	for i := keep; i < p.Width; i++ {
		out[i] = '*'
	}
	return string(out), nil
}

// LevelName implements Hierarchy.
func (p *Prefix) LevelName(level int) string {
	if level == 0 {
		return "ground"
	}
	return fmt.Sprintf("last %d suppressed", level)
}

// PrefixSteps is a generalization of Prefix in which each level
// suppresses a configured number of trailing characters rather than
// exactly one more per level. The paper's Figure 3 uses such a ZipCode
// hierarchy: level 1 suppresses the last two digits (43102 -> 431**)
// and level 2 collapses to one group. When a level suppresses the whole
// value the label is the single group Suppressed ("*").
type PrefixSteps struct {
	Attr string
	// Width is the expected value length.
	Width int
	// Suppress[i-1] is the number of trailing characters replaced at
	// level i; it must be strictly increasing and within [1, Width].
	Suppress []int
}

// NewPrefixSteps builds a PrefixSteps hierarchy and validates the step
// schedule.
func NewPrefixSteps(attr string, width int, suppress []int) (*PrefixSteps, error) {
	if width <= 0 {
		return nil, fmt.Errorf("hierarchy: %s: width must be positive, got %d", attr, width)
	}
	if len(suppress) == 0 {
		return nil, fmt.Errorf("hierarchy: %s: empty suppression schedule", attr)
	}
	prev := 0
	for i, s := range suppress {
		if s <= prev || s > width {
			return nil, fmt.Errorf("hierarchy: %s: suppression schedule must be strictly increasing within [1,%d], got %v at index %d",
				attr, width, suppress, i)
		}
		prev = s
	}
	cp := make([]int, len(suppress))
	copy(cp, suppress)
	return &PrefixSteps{Attr: attr, Width: width, Suppress: cp}, nil
}

// Attribute implements Hierarchy.
func (p *PrefixSteps) Attribute() string { return p.Attr }

// Height implements Hierarchy.
func (p *PrefixSteps) Height() int { return len(p.Suppress) }

// Generalize implements Hierarchy.
func (p *PrefixSteps) Generalize(value string, level int) (string, error) {
	if err := checkLevel(p.Attr, level, len(p.Suppress)); err != nil {
		return "", err
	}
	if len(value) != p.Width {
		return "", fmt.Errorf("hierarchy: %s: value %q is not %d characters", p.Attr, value, p.Width)
	}
	if level == 0 {
		return value, nil
	}
	drop := p.Suppress[level-1]
	if drop == p.Width {
		return Suppressed, nil
	}
	keep := p.Width - drop
	out := make([]byte, p.Width)
	copy(out, value[:keep])
	for i := keep; i < p.Width; i++ {
		out[i] = '*'
	}
	return string(out), nil
}

// LevelName implements Hierarchy.
func (p *PrefixSteps) LevelName(level int) string {
	if level == 0 {
		return "ground"
	}
	if p.Suppress[level-1] == p.Width {
		return "one group"
	}
	return fmt.Sprintf("last %d suppressed", p.Suppress[level-1])
}
