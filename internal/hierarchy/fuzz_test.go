package hierarchy

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzLoadHierarchy drives ParseTree with arbitrary text: the parser
// must never panic, and any tree it accepts must be a working domain
// generalization hierarchy — every ground value generalizes at every
// level, domains only coarsen upward, and the whole tree survives the
// Set.Validate round-trip. Seed corpus under testdata/fuzz.
func FuzzLoadHierarchy(f *testing.F) {
	f.Add("White;White;*\nBlack;Other;*\n")
	f.Add("# comment\n\nNever-married;Single;*\nMarried-civ-spouse;Married;*\n")
	f.Add("a;b\nb;b\n")
	f.Add("x;y;x\n")
	f.Add(";a\n")
	f.Add("a\n")
	f.Fuzz(func(t *testing.T, text string) {
		tree, err := ParseTree("Fuzz", text)
		if err != nil {
			return
		}
		h := tree.Height()
		if h < 1 || h > MaxTreeHeight {
			t.Fatalf("accepted height %d", h)
		}
		ground := tree.GroundValues()
		if len(ground) == 0 || len(ground) > MaxTreeValues {
			t.Fatalf("accepted %d ground values", len(ground))
		}
		for _, v := range ground {
			for lvl := 0; lvl <= h; lvl++ {
				if _, err := tree.Generalize(v, lvl); err != nil {
					t.Fatalf("Generalize(%q, %d): %v", v, lvl, err)
				}
			}
		}
		// Consistency makes level l+1 a function of level l, so domains
		// can only shrink (or hold) going up.
		for lvl := 1; lvl <= h; lvl++ {
			if tree.DomainSize(lvl) > tree.DomainSize(lvl-1) {
				t.Fatalf("domain grows from level %d (%d) to %d (%d)",
					lvl-1, tree.DomainSize(lvl-1), lvl, tree.DomainSize(lvl))
			}
		}
		set, err := NewSet(tree)
		if err != nil {
			t.Fatalf("NewSet: %v", err)
		}
		if err := set.Validate(map[string][]string{"Fuzz": ground}); err != nil {
			t.Fatalf("Validate rejected an accepted tree: %v", err)
		}
	})
}

// TestTreeHardening pins the validation added for hostile input: the
// construction caps, the per-chain cycle check, and ParseTree's empty
// ground value rejection.
func TestTreeHardening(t *testing.T) {
	t.Run("cycle rejected", func(t *testing.T) {
		if _, err := NewTree("X", map[string][]string{"A": {"B", "A"}}); err == nil {
			t.Error("A -> B -> A accepted")
		}
		if _, err := NewTree("X", map[string][]string{"A": {"B", "C", "B"}}); err == nil {
			t.Error("B recurring after C accepted")
		}
	})
	t.Run("identity runs allowed", func(t *testing.T) {
		// The paper's Race chain: White -> White -> *.
		if _, err := NewTree("Race", map[string][]string{
			"White": {"White", "White", "*"},
			"Black": {"Black", "Other", "*"},
		}); err != nil {
			t.Errorf("identity run rejected: %v", err)
		}
	})
	t.Run("height cap", func(t *testing.T) {
		chain := make([]string, MaxTreeHeight+1)
		for i := range chain {
			chain[i] = fmt.Sprintf("l%d", i)
		}
		if _, err := NewTree("X", map[string][]string{"v": chain}); err == nil {
			t.Error("over-tall chain accepted")
		}
	})
	t.Run("label cap", func(t *testing.T) {
		long := strings.Repeat("x", MaxLabelLen+1)
		if _, err := NewTree("X", map[string][]string{long: {"*"}}); err == nil {
			t.Error("oversized ground value accepted")
		}
		if _, err := NewTree("X", map[string][]string{"v": {long}}); err == nil {
			t.Error("oversized label accepted")
		}
	})
	t.Run("empty ground value", func(t *testing.T) {
		if _, err := ParseTree("X", ";a\n"); err == nil {
			t.Error("empty ground value accepted")
		}
	})
	t.Run("text cap", func(t *testing.T) {
		if _, err := ParseTree("X", strings.Repeat("#", MaxParseBytes+1)); err == nil {
			t.Error("oversized text accepted")
		}
	})
}
