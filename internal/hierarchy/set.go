package hierarchy

import (
	"fmt"
	"sort"
)

// Set is a collection of hierarchies keyed by attribute name — the
// per-dataset configuration a data owner supplies before masking.
type Set struct {
	byAttr map[string]Hierarchy
}

// NewSet builds a set from hierarchies; duplicate attributes are an
// error.
func NewSet(hs ...Hierarchy) (*Set, error) {
	s := &Set{byAttr: make(map[string]Hierarchy, len(hs))}
	for _, h := range hs {
		if h == nil {
			return nil, fmt.Errorf("hierarchy: nil hierarchy in set")
		}
		if _, dup := s.byAttr[h.Attribute()]; dup {
			return nil, fmt.Errorf("hierarchy: duplicate hierarchy for attribute %q", h.Attribute())
		}
		s.byAttr[h.Attribute()] = h
	}
	return s, nil
}

// MustSet is NewSet that panics on error, for static configurations.
func MustSet(hs ...Hierarchy) *Set {
	s, err := NewSet(hs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Get returns the hierarchy for an attribute.
func (s *Set) Get(attr string) (Hierarchy, error) {
	h, ok := s.byAttr[attr]
	if !ok {
		return nil, fmt.Errorf("hierarchy: no hierarchy for attribute %q", attr)
	}
	return h, nil
}

// Has reports whether the set covers the attribute.
func (s *Set) Has(attr string) bool { _, ok := s.byAttr[attr]; return ok }

// Attributes returns the covered attribute names, sorted.
func (s *Set) Attributes() []string {
	names := make([]string, 0, len(s.byAttr))
	for a := range s.byAttr {
		names = append(names, a)
	}
	sort.Strings(names)
	return names
}

// Heights returns the hierarchy heights for the given attributes in
// order — the dimension vector of the generalization lattice.
func (s *Set) Heights(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		h, err := s.Get(a)
		if err != nil {
			return nil, err
		}
		out[i] = h.Height()
	}
	return out, nil
}

// Validate checks that each hierarchy behaves as a proper domain
// generalization hierarchy over the supplied sample of ground values:
// generalization is defined at every level, and values equal at level i
// stay equal at level i+1 (monotone coarsening).
func (s *Set) Validate(ground map[string][]string) error {
	for attr, values := range ground {
		h, err := s.Get(attr)
		if err != nil {
			return err
		}
		for lvl := 0; lvl <= h.Height(); lvl++ {
			for _, v := range values {
				if _, err := h.Generalize(v, lvl); err != nil {
					return fmt.Errorf("hierarchy: validate %s level %d: %w", attr, lvl, err)
				}
			}
		}
		for lvl := 0; lvl < h.Height(); lvl++ {
			// parent[label at lvl] -> label at lvl+1 must be a function.
			parent := make(map[string]string)
			for _, v := range values {
				lo, _ := h.Generalize(v, lvl)
				hi, _ := h.Generalize(v, lvl+1)
				if up, ok := parent[lo]; ok && up != hi {
					return fmt.Errorf("hierarchy: %s: level %d label %q generalizes to both %q and %q at level %d",
						attr, lvl, lo, up, hi, lvl+1)
				}
				parent[lo] = hi
			}
		}
	}
	return nil
}
