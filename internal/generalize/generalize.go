// Package generalize applies full-domain generalization (global
// recoding) and suppression to microdata, producing masked microdata in
// the sense of Samarati/Sweeney and the p-sensitive k-anonymity paper.
package generalize

import (
	"fmt"
	"sort"

	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/table"
)

// Masker binds a quasi-identifier list to its hierarchies and performs
// the two masking operations of the paper: Apply (generalize to a
// lattice node) and Suppress (drop tuples in small groups).
type Masker struct {
	qis   []string
	hiers *hierarchy.Set
	lat   *lattice.Lattice
}

// NewMasker validates that every quasi-identifier has a hierarchy and
// builds the corresponding generalization lattice.
func NewMasker(qis []string, hiers *hierarchy.Set) (*Masker, error) {
	if len(qis) == 0 {
		return nil, fmt.Errorf("generalize: no quasi-identifier attributes")
	}
	dims, err := hiers.Heights(qis)
	if err != nil {
		return nil, fmt.Errorf("generalize: %w", err)
	}
	lat, err := lattice.New(dims)
	if err != nil {
		return nil, fmt.Errorf("generalize: %w", err)
	}
	q := make([]string, len(qis))
	copy(q, qis)
	return &Masker{qis: q, hiers: hiers, lat: lat}, nil
}

// QuasiIdentifiers returns the quasi-identifier attribute names.
func (m *Masker) QuasiIdentifiers() []string {
	q := make([]string, len(m.qis))
	copy(q, m.qis)
	return q
}

// Lattice returns the generalization lattice induced by the hierarchy
// heights.
func (m *Masker) Lattice() *lattice.Lattice { return m.lat }

// Apply recodes every quasi-identifier column of t to the domain given
// by the lattice node: column i is mapped through its hierarchy at level
// node[i]. Non-QI columns (in particular all confidential attributes)
// are untouched, which is what makes Theorems 1 and 2 of the paper hold.
func (m *Masker) Apply(t *table.Table, node lattice.Node) (*table.Table, error) {
	if !m.lat.Contains(node) {
		return nil, fmt.Errorf("generalize: node %v outside lattice with dims %v", node, m.lat.Dims())
	}
	out := t
	for i, attr := range m.qis {
		if node[i] == 0 {
			continue
		}
		h, err := m.hiers.Get(attr)
		if err != nil {
			return nil, fmt.Errorf("generalize: %w", err)
		}
		level := node[i]
		out, err = out.MapColumn(attr, func(v table.Value) (string, error) {
			return h.Generalize(v.Str(), level)
		})
		if err != nil {
			return nil, fmt.Errorf("generalize: apply %s level %d: %w", attr, level, err)
		}
	}
	return out, nil
}

// ViolatingTuples counts the tuples whose QI-group has fewer than k
// members — the number of tuples that would need suppression for the
// table to become k-anonymous (the parenthesized counts of Figure 3).
func (m *Masker) ViolatingTuples(t *table.Table, k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("generalize: k must be >= 1, got %d", k)
	}
	groups, err := t.GroupBy(m.qis...)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, g := range groups {
		if g.Size() < k {
			n += g.Size()
		}
	}
	return n, nil
}

// Suppress removes every tuple whose QI-group has fewer than k members
// and returns the masked table together with the number of suppressed
// tuples. Suppressing all remaining violators always yields a
// k-anonymous table (groups only shrink to zero, never below k).
func (m *Masker) Suppress(t *table.Table, k int) (*table.Table, int, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("generalize: k must be >= 1, got %d", k)
	}
	groups, err := t.GroupBy(m.qis...)
	if err != nil {
		return nil, 0, err
	}
	keep := make([]int, 0, t.NumRows())
	for _, g := range groups {
		if g.Size() >= k {
			keep = append(keep, g.Rows...)
		}
	}
	// Restore original row order for determinism.
	sort.Ints(keep)
	out, err := t.Gather(keep)
	if err != nil {
		return nil, 0, err
	}
	return out, t.NumRows() - len(keep), nil
}

// SuppressWithin enforces a suppression budget and suppresses in one
// group-by pass: it counts the tuples in sub-k groups and, when the
// count is within budget, removes them. ok is false (with a nil table)
// when more than budget tuples would need suppression. Equivalent to
// ViolatingTuples followed by Suppress, but grouping the table once
// instead of twice — the per-node hot path of the lattice searches.
func (m *Masker) SuppressWithin(t *table.Table, k, budget int) (*table.Table, int, bool, error) {
	if k < 1 {
		return nil, 0, false, fmt.Errorf("generalize: k must be >= 1, got %d", k)
	}
	groups, err := t.GroupBy(m.qis...)
	if err != nil {
		return nil, 0, false, err
	}
	violating := 0
	for _, g := range groups {
		if g.Size() < k {
			violating += g.Size()
		}
	}
	if violating > budget {
		return nil, violating, false, nil
	}
	if violating == 0 {
		return t, 0, true, nil
	}
	keep := make([]int, 0, t.NumRows()-violating)
	for _, g := range groups {
		if g.Size() >= k {
			keep = append(keep, g.Rows...)
		}
	}
	// Restore original row order for determinism.
	sort.Ints(keep)
	out, err := t.Gather(keep)
	if err != nil {
		return nil, 0, false, err
	}
	return out, violating, true, nil
}

// Mask is Apply followed by Suppress: the full masking pipeline of the
// paper (generalize to a node, then suppress residual small groups).
// It returns the masked microdata and the number of suppressed tuples.
func (m *Masker) Mask(t *table.Table, node lattice.Node, k int) (*table.Table, int, error) {
	g, err := m.Apply(t, node)
	if err != nil {
		return nil, 0, err
	}
	return m.Suppress(g, k)
}
