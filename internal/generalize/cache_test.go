package generalize

import (
	"sync"
	"testing"

	"psk/internal/lattice"
	"psk/internal/table"
)

// TestCacheApplyMatchesMasker: for every lattice node, the cached
// column-swap assembly must render byte-identically to Masker.Apply.
func TestCacheApplyMatchesMasker(t *testing.T) {
	tbl := figure3Table(t)
	m := figure3Masker(t)
	c := m.NewCache(tbl)
	for _, node := range m.Lattice().AllNodes() {
		want, err := m.Apply(tbl, node)
		if err != nil {
			t.Fatalf("Apply(%v): %v", node, err)
		}
		got, err := c.Apply(node)
		if err != nil {
			t.Fatalf("Cache.Apply(%v): %v", node, err)
		}
		if got.Format(-1) != want.Format(-1) {
			t.Errorf("node %v:\ncache:\n%s\nmasker:\n%s", node, got.Format(-1), want.Format(-1))
		}
	}
	// The bottom node is served without any copying.
	if got, _ := c.Apply(m.Lattice().Bottom()); got != tbl {
		t.Error("bottom node should return the source table unchanged")
	}
	// Nodes outside the lattice are rejected.
	if _, err := c.Apply(lattice.Node{9, 9}); err == nil {
		t.Error("node outside lattice accepted")
	}
	if _, err := c.ApplyQIs([]string{"Sex"}, lattice.Node{1, 1}); err == nil {
		t.Error("qis/node length mismatch accepted")
	}
}

// TestCacheMaskMatchesMasker: the cached Mask pipeline must agree with
// the uncached one, including suppression counts.
func TestCacheMaskMatchesMasker(t *testing.T) {
	tbl := figure3Table(t)
	m := figure3Masker(t)
	c := m.NewCache(tbl)
	for _, node := range m.Lattice().AllNodes() {
		want, ws, err := m.Mask(tbl, node, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, gs, err := c.Mask(node, 3)
		if err != nil {
			t.Fatal(err)
		}
		if gs != ws || got.Format(-1) != want.Format(-1) {
			t.Errorf("node %v: suppressed %d vs %d, or tables differ", node, gs, ws)
		}
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run with
// -race. Every goroutine must observe identical column pointers (each
// entry computed exactly once).
func TestCacheConcurrent(t *testing.T) {
	tbl := figure3Table(t)
	m := figure3Masker(t)
	c := m.NewCache(tbl)
	nodes := m.Lattice().AllNodes()
	var wg sync.WaitGroup
	cols := make([]table.Column, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, node := range nodes {
				if _, err := c.Apply(node); err != nil {
					t.Error(err)
					return
				}
			}
			col, err := c.Column("ZipCode", 1)
			if err != nil {
				t.Error(err)
				return
			}
			cols[i] = col
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if cols[i] != cols[0] {
			t.Fatalf("goroutine %d saw a different cached column", i)
		}
	}
}

// TestSuppressWithin: single-pass budget enforcement must agree with
// ViolatingTuples + Suppress at every node and budget.
func TestSuppressWithin(t *testing.T) {
	tbl := figure3Table(t)
	m := figure3Masker(t)
	for _, node := range m.Lattice().AllNodes() {
		g, err := m.Apply(tbl, node)
		if err != nil {
			t.Fatal(err)
		}
		violating, err := m.ViolatingTuples(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		for budget := 0; budget <= 10; budget++ {
			out, suppressed, ok, err := m.SuppressWithin(g, 3, budget)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (violating <= budget) {
				t.Errorf("node %v budget %d: ok=%v, violating=%d", node, budget, ok, violating)
				continue
			}
			if !ok {
				continue
			}
			want, ws, err := m.Suppress(g, 3)
			if err != nil {
				t.Fatal(err)
			}
			if suppressed != ws || out.Format(-1) != want.Format(-1) {
				t.Errorf("node %v budget %d: suppressed %d vs %d, or tables differ", node, budget, suppressed, ws)
			}
		}
	}
	if _, _, _, err := m.SuppressWithin(tbl, 0, 5); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestLevelMap: for every attribute and ordered level pair, the cached
// code map must translate each row's code at the finer level to its
// code at the coarser level; equal levels are the nil identity map, and
// specializing (coarse -> fine) pairs are rejected as non-functional.
func TestLevelMap(t *testing.T) {
	tbl := figure3Table(t)
	m := figure3Masker(t)
	c := m.NewCache(tbl)
	dims := m.Lattice().Dims()
	for qi, attr := range m.QuasiIdentifiers() {
		maxLevel := dims[qi] - 1
		for from := 0; from <= maxLevel; from++ {
			for to := from; to <= maxLevel; to++ {
				cm, err := c.LevelMap(attr, from, to)
				if err != nil {
					t.Fatalf("LevelMap(%s, %d, %d): %v", attr, from, to, err)
				}
				if from == to {
					if cm != nil {
						t.Errorf("LevelMap(%s, %d, %d) not identity", attr, from, to)
					}
					continue
				}
				fromCol, err := c.levelColumn(attr, from)
				if err != nil {
					t.Fatal(err)
				}
				toCol, err := c.levelColumn(attr, to)
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < tbl.NumRows(); r++ {
					got, ok := cm.Map(fromCol.Code(r))
					if !ok || got != toCol.Code(r) {
						t.Errorf("%s %d->%d row %d: Map(%d) = %d,%v want %d",
							attr, from, to, r, fromCol.Code(r), got, ok, toCol.Code(r))
					}
				}
			}
		}
	}
	// Specializing direction: "Person" covers both M and F, so the
	// relation is not a function.
	if _, err := c.LevelMap("Sex", 1, 0); err == nil {
		t.Error("specializing level map accepted")
	}
	// Unknown attribute.
	if _, err := c.LevelMap("Age", 0, 1); err == nil {
		t.Error("unknown attribute accepted")
	}
}

// TestLevelMapConcurrent hammers LevelMap from many goroutines; run
// with -race. Every goroutine must observe the identical memoized map.
func TestLevelMapConcurrent(t *testing.T) {
	tbl := figure3Table(t)
	m := figure3Masker(t)
	c := m.NewCache(tbl)
	var wg sync.WaitGroup
	maps := make([]*table.CodeMap, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cm, err := c.LevelMap("ZipCode", 0, 2)
			if err != nil {
				t.Error(err)
				return
			}
			maps[i] = cm
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if maps[i] != maps[0] {
			t.Fatalf("goroutine %d saw a different cached map", i)
		}
	}
}
