package generalize

import (
	"psk/internal/hierarchy"
	"psk/internal/table"
)

// SuppressCells applies local suppression (the paper's Section 2 lists
// it among the masking methods): instead of deleting the tuples of
// undersized QI-groups, their quasi-identifier *cells* are replaced
// with the Suppressed label ("*"), moving them into the fully masked
// group. The record count — and with it every confidential value — is
// preserved, which matters for statistical users who need unbiased
// counts over the confidential attributes.
//
// The fully masked group itself counts toward k: the result is
// k-anonymous iff the number of locally suppressed tuples is 0 or at
// least k (a caller that needs the guarantee re-checks with
// core.IsKAnonymous). The returned count is the number of tuples whose
// cells were suppressed.
func (m *Masker) SuppressCells(t *table.Table, k int) (*table.Table, int, error) {
	groups, err := t.GroupBy(m.qis...)
	if err != nil {
		return nil, 0, err
	}
	suppress := make(map[int]bool)
	for _, g := range groups {
		if g.Size() < k {
			for _, r := range g.Rows {
				suppress[r] = true
			}
		}
	}
	if len(suppress) == 0 {
		return t, 0, nil
	}
	out := t
	for _, attr := range m.qis {
		row := 0
		out, err = out.MapColumn(attr, func(v table.Value) (string, error) {
			r := row
			row++
			if suppress[r] {
				return hierarchy.Suppressed, nil
			}
			return v.Str(), nil
		})
		if err != nil {
			return nil, 0, err
		}
	}
	return out, len(suppress), nil
}
