package generalize

import (
	"fmt"
	"sync"
	"sync/atomic"

	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// Cache memoizes the generalized code array for each (QI attribute,
// hierarchy level) pair of one source table, so a lattice search that
// evaluates many nodes re-generalizes each column once per level instead
// of once per node. A node's masked table is then assembled by swapping
// cached columns into the source table (O(#QIs) pointer work) rather
// than re-walking hierarchies per row.
//
// A Cache is safe for concurrent use: each column is computed exactly
// once behind a per-entry sync.Once, and entries are immutable
// afterwards, which is what lets the parallel search engine share one
// Cache across its whole worker pool without further locking.
type Cache struct {
	src *table.Table
	m   *Masker

	mu      sync.Mutex
	entries map[colKey]*colEntry
	maps    map[mapKey]*mapEntry

	// rec is the telemetry sink, if any. An atomic pointer because
	// Incognito shares one cache across sub-searches that may attach a
	// recorder while workers from an earlier phase still read it.
	rec atomic.Pointer[obs.Recorder]

	// bytes is the estimated memory (table.MemBytes) of all columns
	// built so far, maintained unconditionally — unlike the telemetry
	// counters — because Budget.MaxCacheBytes enforcement reads it
	// between node evaluations whether or not a recorder is attached.
	bytes atomic.Int64
}

type colKey struct {
	attr  string
	level int
}

type colEntry struct {
	once  sync.Once
	col   table.Column
	bytes int64
	err   error
}

type mapKey struct {
	attr     string
	from, to int
}

type mapEntry struct {
	once sync.Once
	cm   *table.CodeMap
	err  error
}

// NewCache binds a cache to one source table. The cache serves every QI
// subset of the masker (Incognito's sub-searches share it), because
// entries are keyed by attribute name, not by QI position.
func (m *Masker) NewCache(src *table.Table) *Cache {
	return &Cache{src: src, m: m, entries: make(map[colKey]*colEntry), maps: make(map[mapKey]*mapEntry)}
}

// Source returns the table the cache generalizes.
func (c *Cache) Source() *table.Table { return c.src }

// Observe attaches a telemetry recorder; hits, misses and built-column
// bytes are reported to it from then on. A nil recorder detaches.
func (c *Cache) Observe(rec *obs.Recorder) {
	c.rec.Store(rec)
}

// recorder returns the attached recorder (nil when telemetry is off;
// obs methods are nil-safe so callers don't guard).
func (c *Cache) recorder() *obs.Recorder { return c.rec.Load() }

// Column returns the source column for attr generalized to the given
// hierarchy level, computing and memoizing it on first use.
func (c *Cache) Column(attr string, level int) (table.Column, error) {
	c.mu.Lock()
	e, ok := c.entries[colKey{attr, level}]
	if !ok {
		e = &colEntry{}
		c.entries[colKey{attr, level}] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		h, err := c.m.hiers.Get(attr)
		if err != nil {
			e.err = fmt.Errorf("generalize: %w", err)
			return
		}
		// RemappedColumn applies the hierarchy walk once per distinct
		// source value and translates the packed code stream block-wise
		// — no per-row string is materialized, and the built column is
		// bit-packed from the start.
		e.col, e.err = c.src.RemappedColumn(attr, func(v table.Value) (string, error) {
			return h.Generalize(v.Str(), level)
		})
		if e.err != nil {
			e.err = fmt.Errorf("generalize: cache %s level %d: %w", attr, level, e.err)
		}
		if e.col != nil {
			e.bytes = table.MemBytes(e.col)
			c.bytes.Add(e.bytes)
		}
	})
	if rec := c.recorder(); rec != nil {
		// The goroutine that inserted the entry reports the miss (and
		// the built column's size); every later access is a hit.
		if ok {
			rec.CacheColumn(true, 0)
		} else {
			rec.CacheColumn(false, e.bytes)
		}
	}
	return e.col, e.err
}

// Bytes returns the estimated memory currently held by built columns,
// the quantity search budgets cap with Budget.MaxCacheBytes.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// levelColumn returns attr generalized to level, where level 0 is the
// source column itself (ApplyQIs leaves level-0 attributes untouched,
// so code maps must translate relative to the raw column there).
func (c *Cache) levelColumn(attr string, level int) (table.Column, error) {
	if level == 0 {
		col, err := c.src.Column(attr)
		if err != nil {
			return nil, fmt.Errorf("generalize: %w", err)
		}
		return col, nil
	}
	return c.Column(attr, level)
}

// LevelMap returns the code translation for attr from one hierarchy
// level to another, computing and memoizing it on first use. A nil map
// (with nil error) means the levels are equal and the translation is
// the identity. Full-domain recoding guarantees the translation exists
// whenever `to` generalizes `from`; requesting a non-nested pair
// surfaces as a non-functional-relation error from BuildCodeMap.
//
// The roll-up layer uses these maps to move QI-group keys between
// lattice nodes without rescanning rows.
func (c *Cache) LevelMap(attr string, from, to int) (*table.CodeMap, error) {
	if from == to {
		return nil, nil
	}
	c.mu.Lock()
	e, ok := c.maps[mapKey{attr, from, to}]
	if !ok {
		e = &mapEntry{}
		c.maps[mapKey{attr, from, to}] = e
	}
	c.mu.Unlock()
	c.recorder().CacheLevelMap(ok)
	e.once.Do(func() {
		fromCol, err := c.levelColumn(attr, from)
		if err != nil {
			e.err = err
			return
		}
		toCol, err := c.levelColumn(attr, to)
		if err != nil {
			e.err = err
			return
		}
		e.cm, e.err = table.BuildCodeMap(fromCol, toCol)
		if e.err != nil {
			e.err = fmt.Errorf("generalize: level map %s %d->%d: %w", attr, from, to, e.err)
		}
	})
	return e.cm, e.err
}

// Apply recodes the masker's quasi-identifier columns to the levels of
// the lattice node, equivalent to Masker.Apply on the cached source
// table but served from memoized columns.
func (c *Cache) Apply(node lattice.Node) (*table.Table, error) {
	if !c.m.lat.Contains(node) {
		return nil, fmt.Errorf("generalize: node %v outside lattice with dims %v", node, c.m.lat.Dims())
	}
	return c.ApplyQIs(c.m.qis, node)
}

// ApplyQIs recodes the given quasi-identifier subset (node[i] is the
// level for qis[i]); Incognito's subset lattices use this with one
// shared cache.
func (c *Cache) ApplyQIs(qis []string, node lattice.Node) (*table.Table, error) {
	if len(qis) != len(node) {
		return nil, fmt.Errorf("generalize: node %v has %d levels for %d attributes", node, len(node), len(qis))
	}
	out := c.src
	for i, attr := range qis {
		if node[i] == 0 {
			continue
		}
		col, err := c.Column(attr, node[i])
		if err != nil {
			return nil, err
		}
		out, err = out.WithColumn(attr, col)
		if err != nil {
			return nil, fmt.Errorf("generalize: apply %s level %d: %w", attr, node[i], err)
		}
	}
	return out, nil
}

// Mask is the cached fast path of Masker.Mask: Apply from memoized
// columns, then suppress residual small groups.
func (c *Cache) Mask(node lattice.Node, k int) (*table.Table, int, error) {
	g, err := c.Apply(node)
	if err != nil {
		return nil, 0, err
	}
	return c.m.Suppress(g, k)
}
