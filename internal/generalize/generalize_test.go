package generalize

import (
	"testing"

	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/table"
)

// figure3Table reproduces the 10-row Sex/ZipCode microdata of the
// paper's Figure 3.
func figure3Table(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"M", "41076"},
		{"F", "41099"},
		{"M", "41099"},
		{"M", "41076"},
		{"F", "43102"},
		{"M", "43102"},
		{"M", "43102"},
		{"F", "43103"},
		{"M", "48202"},
		{"M", "48201"},
	})
	if err != nil {
		t.Fatalf("FromText: %v", err)
	}
	return tbl
}

// figure3Masker builds the masker matching the paper's Figure 3 lattice:
// Sex (M/F -> Person) and ZipCode with Z1 = last two digits suppressed
// (431**) and Z2 = one group. These levels are what reproduce the
// paper's violation counts and Table 4's minimal generalizations.
func figure3Masker(t *testing.T) *Masker {
	t.Helper()
	zip, err := hierarchy.NewPrefixSteps("ZipCode", 5, []int{2, 5})
	if err != nil {
		t.Fatalf("NewPrefixSteps: %v", err)
	}
	m, err := NewMasker([]string{"Sex", "ZipCode"}, hierarchy.MustSet(zip, NewSexFlat()))
	if err != nil {
		t.Fatalf("NewMasker: %v", err)
	}
	return m
}

// NewSexFlat builds the paper's Sex hierarchy (M/F -> Person).
func NewSexFlat() *hierarchy.Flat {
	f := hierarchy.NewFlat("Sex")
	f.Top = "Person"
	return f
}

func TestNewMaskerValidation(t *testing.T) {
	zip, _ := hierarchy.NewPrefix("ZipCode", 5, 2)
	set := hierarchy.MustSet(zip)
	if _, err := NewMasker(nil, set); err == nil {
		t.Error("empty QI list accepted")
	}
	if _, err := NewMasker([]string{"Age"}, set); err == nil {
		t.Error("missing hierarchy accepted")
	}
	m, err := NewMasker([]string{"ZipCode"}, set)
	if err != nil {
		t.Fatalf("NewMasker: %v", err)
	}
	if m.Lattice().Height() != 2 {
		t.Errorf("lattice height = %d", m.Lattice().Height())
	}
	qis := m.QuasiIdentifiers()
	qis[0] = "mutated"
	if m.QuasiIdentifiers()[0] != "ZipCode" {
		t.Error("QuasiIdentifiers leaks internal slice")
	}
}

func TestApplyIdentity(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	out, err := m.Apply(tbl, lattice.Node{0, 0})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	v, _ := out.Value(0, "ZipCode")
	if v.Str() != "41076" {
		t.Errorf("identity apply changed value: %q", v.Str())
	}
}

func TestApplyGeneralizes(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	out, err := m.Apply(tbl, lattice.Node{1, 1})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	sex, _ := out.Value(0, "Sex")
	zip, _ := out.Value(0, "ZipCode")
	if sex.Str() != "Person" || zip.Str() != "410**" {
		t.Errorf("apply = %q/%q, want Person/410**", sex.Str(), zip.Str())
	}
	top, err := m.Apply(tbl, lattice.Node{1, 2})
	if err != nil {
		t.Fatalf("Apply top: %v", err)
	}
	zip, _ = top.Value(0, "ZipCode")
	if zip.Str() != hierarchy.Suppressed {
		t.Errorf("top zip = %q, want %q", zip.Str(), hierarchy.Suppressed)
	}
	// Original table untouched.
	orig, _ := tbl.Value(0, "Sex")
	if orig.Str() != "M" {
		t.Error("Apply mutated input table")
	}
}

func TestApplyRejectsBadNode(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	if _, err := m.Apply(tbl, lattice.Node{0, 3}); err == nil {
		t.Error("out-of-lattice node accepted")
	}
	if _, err := m.Apply(tbl, lattice.Node{0}); err == nil {
		t.Error("wrong-length node accepted")
	}
}

// TestFigure3ViolationCounts reproduces the parenthesized counts of
// Figure 3: tuples failing 3-anonymity at each lattice node.
func TestFigure3ViolationCounts(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	cases := []struct {
		node lattice.Node
		want int
	}{
		{lattice.Node{0, 0}, 10}, // <S0,Z0>: all groups < 3
		{lattice.Node{1, 0}, 7},  // <S1,Z0>
		{lattice.Node{0, 1}, 7},  // <S0,Z1>
		{lattice.Node{1, 1}, 2},  // <S1,Z1>
		{lattice.Node{0, 2}, 0},  // <S0,Z2>: M x7, F x3
		{lattice.Node{1, 2}, 0},  // <S1,Z2>: one group of 10
	}
	for _, c := range cases {
		g, err := m.Apply(tbl, c.node)
		if err != nil {
			t.Fatalf("Apply(%v): %v", c.node, err)
		}
		n, err := m.ViolatingTuples(g, 3)
		if err != nil {
			t.Fatalf("ViolatingTuples: %v", err)
		}
		if n != c.want {
			t.Errorf("violations at %v = %d, want %d", c.node, n, c.want)
		}
	}
}

func TestSuppress(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	g, _ := m.Apply(tbl, lattice.Node{0, 1}) // 7 violating tuples
	mm, suppressed, err := m.Suppress(g, 3)
	if err != nil {
		t.Fatalf("Suppress: %v", err)
	}
	if suppressed != 7 {
		t.Errorf("suppressed = %d, want 7", suppressed)
	}
	if mm.NumRows() != 3 {
		t.Errorf("remaining rows = %d, want 3", mm.NumRows())
	}
	// Result is 3-anonymous.
	n, _ := m.ViolatingTuples(mm, 3)
	if n != 0 {
		t.Errorf("masked table still has %d violating tuples", n)
	}
	// The surviving group is the 410** males.
	zip, _ := mm.Value(0, "ZipCode")
	if zip.Str() != "410**" {
		t.Errorf("surviving zip = %q", zip.Str())
	}
}

func TestSuppressPreservesRowOrder(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	g, _ := m.Apply(tbl, lattice.Node{1, 1}) // 2 violators (4820* group)
	mm, suppressed, _ := m.Suppress(g, 3)
	if suppressed != 2 || mm.NumRows() != 8 {
		t.Fatalf("suppressed=%d rows=%d", suppressed, mm.NumRows())
	}
	// Rows must appear in original relative order: first row is 410**.
	zip, _ := mm.Value(0, "ZipCode")
	if zip.Str() != "410**" {
		t.Errorf("first surviving zip = %q, want 410**", zip.Str())
	}
	last, _ := mm.Value(7, "ZipCode")
	if last.Str() != "431**" {
		t.Errorf("last surviving zip = %q, want 431**", last.Str())
	}
}

func TestMaskPipeline(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	mm, suppressed, err := m.Mask(tbl, lattice.Node{1, 1}, 3)
	if err != nil {
		t.Fatalf("Mask: %v", err)
	}
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	n, _ := m.ViolatingTuples(mm, 3)
	if n != 0 {
		t.Error("Mask output not k-anonymous")
	}
	if _, _, err := m.Mask(tbl, lattice.Node{9, 9}, 3); err == nil {
		t.Error("Mask with bad node should fail")
	}
}

func TestKValidation(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	if _, err := m.ViolatingTuples(tbl, 0); err == nil {
		t.Error("k=0 accepted by ViolatingTuples")
	}
	if _, _, err := m.Suppress(tbl, 0); err == nil {
		t.Error("k=0 accepted by Suppress")
	}
}

func TestSuppressK1IsNoOp(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	mm, suppressed, err := m.Suppress(tbl, 1)
	if err != nil || suppressed != 0 || mm.NumRows() != 10 {
		t.Errorf("Suppress k=1: rows=%d suppressed=%d err=%v", mm.NumRows(), suppressed, err)
	}
}

// Property-style check across all lattice nodes: the number of
// violating tuples never increases as we move up a generalization path
// (the monotonicity Figure 3 relies on), and Mask output is always
// k-anonymous.
func TestViolationMonotonicityAcrossLattice(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	lat := m.Lattice()
	viol := make(map[string]int)
	for _, node := range lat.AllNodes() {
		g, err := m.Apply(tbl, node)
		if err != nil {
			t.Fatalf("Apply(%v): %v", node, err)
		}
		n, err := m.ViolatingTuples(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		viol[node.Key()] = n

		mm, _, err := m.Mask(tbl, node, 3)
		if err != nil {
			t.Fatal(err)
		}
		if left, _ := m.ViolatingTuples(mm, 3); left != 0 {
			t.Errorf("Mask at %v left %d violators", node, left)
		}
	}
	for _, node := range lat.AllNodes() {
		for _, succ := range lat.Successors(node) {
			if viol[succ.Key()] > viol[node.Key()] {
				t.Errorf("violations increased along %v -> %v: %d -> %d",
					node, succ, viol[node.Key()], viol[succ.Key()])
			}
		}
	}
}

func TestSuppressCells(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	g, _ := m.Apply(tbl, lattice.Node{1, 1}) // 482** pair violates k=3
	out, suppressed, err := m.SuppressCells(g, 3)
	if err != nil {
		t.Fatalf("SuppressCells: %v", err)
	}
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	// No rows lost.
	if out.NumRows() != tbl.NumRows() {
		t.Errorf("rows = %d, want %d", out.NumRows(), tbl.NumRows())
	}
	// The two 482** records now carry "*" in every QI cell.
	stars := 0
	for r := 0; r < out.NumRows(); r++ {
		sex, _ := out.Value(r, "Sex")
		zip, _ := out.Value(r, "ZipCode")
		if sex.Str() == "*" {
			if zip.Str() != "*" {
				t.Errorf("row %d partially suppressed: %s/%s", r, sex.Str(), zip.Str())
			}
			stars++
		}
	}
	if stars != 2 {
		t.Errorf("fully masked rows = %d, want 2", stars)
	}
	// With only 2 masked rows the "*" group is itself undersized for
	// k=3: local suppression trades row loss for that residual group.
	n, _ := m.ViolatingTuples(out, 3)
	if n != 2 {
		t.Errorf("residual violators = %d, want 2 (the * group)", n)
	}
}

func TestSuppressCellsNoViolations(t *testing.T) {
	m := figure3Masker(t)
	tbl := figure3Table(t)
	g, _ := m.Apply(tbl, lattice.Node{1, 2}) // one group of 10
	out, suppressed, err := m.SuppressCells(g, 3)
	if err != nil || suppressed != 0 {
		t.Errorf("suppressed = %d, %v; want 0", suppressed, err)
	}
	if out != g {
		t.Error("no-op suppression should return the input table")
	}
}

func TestSuppressCellsReachesK(t *testing.T) {
	// Three singleton groups collapse into one "*" group of size 3:
	// the result is 3-anonymous.
	m := figure3Masker(t)
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"M", "41076"}, {"F", "43102"}, {"M", "48201"},
		{"M", "41099"}, {"M", "41099"}, {"M", "41099"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, suppressed, err := m.SuppressCells(tbl, 3)
	if err != nil || suppressed != 3 {
		t.Fatalf("suppressed = %d, %v; want 3", suppressed, err)
	}
	n, _ := m.ViolatingTuples(out, 3)
	if n != 0 {
		t.Errorf("residual violators = %d, want 0", n)
	}
}
