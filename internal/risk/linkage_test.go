package risk

import (
	"testing"

	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/table"
)

// The paper's Section 2 example: Table 1 (masked patients) attacked
// with Table 2 (external identified list). Age was generalized to
// multiples of 10 (floor to decade start), ZipCode and Sex released at
// ground level.

func maskedPatients(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"50", "43102", "M", "Colon Cancer"},
		{"30", "43102", "F", "Breast Cancer"},
		{"30", "43102", "F", "HIV"},
		{"20", "43102", "M", "Diabetes"},
		{"20", "43102", "M", "Diabetes"},
		{"50", "43102", "M", "Heart Disease"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func externalTable(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Name", Type: table.String},
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"Sam", "29", "M", "43102"},
		{"Gloria", "38", "F", "43102"},
		{"Adam", "51", "M", "43102"},
		{"Eric", "29", "M", "43102"},
		{"Tanisha", "34", "F", "43102"},
		{"Don", "51", "M", "43102"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// decadeHierarchy generalizes an age to the start of its decade, which
// is exactly how Table 1's ages were masked (29 -> 20, 51 -> 50).
func decadeHierarchy(t *testing.T) *hierarchy.Set {
	t.Helper()
	var levels []hierarchy.IntervalLevel
	lvl := hierarchy.IntervalLevel{Name: "decade"}
	for c := int64(10); c <= 90; c += 10 {
		lvl.Cuts = append(lvl.Cuts, c)
	}
	for c := int64(0); c <= 90; c += 10 {
		lvl.Labels = append(lvl.Labels, table.IV(c).Str())
	}
	levels = append(levels, lvl)
	age, err := hierarchy.NewInterval("Age", levels)
	if err != nil {
		t.Fatal(err)
	}
	zip, err := hierarchy.NewPrefix("ZipCode", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return hierarchy.MustSet(age, zip, hierarchy.NewFlat("Sex"))
}

func paperIntruder(t *testing.T) *Intruder {
	return &Intruder{
		External:    externalTable(t),
		IDAttr:      "Name",
		QIs:         []string{"Age", "ZipCode", "Sex"},
		Hierarchies: decadeHierarchy(t),
		Node:        lattice.Node{1, 0, 0}, // only Age generalized
	}
}

// TestPaperAttack reproduces the Sam/Eric example: both link to the two
// Diabetes tuples, so neither is identified but both suffer attribute
// disclosure.
func TestPaperAttack(t *testing.T) {
	in := paperIntruder(t)
	links, err := in.Attack(maskedPatients(t), []string{"Illness"})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	if len(links) != 6 {
		t.Fatalf("links = %d", len(links))
	}
	byID := make(map[string]Linkage)
	for _, l := range links {
		byID[l.ID] = l
	}

	for _, name := range []string{"Sam", "Eric"} {
		l := byID[name]
		if len(l.Candidates) != 2 {
			t.Errorf("%s candidates = %d, want 2", name, len(l.Candidates))
		}
		if l.IdentityRisk != 0.5 {
			t.Errorf("%s identity risk = %g, want 0.5", name, l.IdentityRisk)
		}
		if got := l.Learned["Illness"]; got != "Diabetes" {
			t.Errorf("%s learned %q, want Diabetes", name, got)
		}
	}

	// Adam and Don link to the two 50s males with different illnesses:
	// no attribute disclosure.
	for _, name := range []string{"Adam", "Don"} {
		l := byID[name]
		if len(l.Candidates) != 2 {
			t.Errorf("%s candidates = %d, want 2", name, len(l.Candidates))
		}
		if len(l.Learned) != 0 {
			t.Errorf("%s should learn nothing, got %v", name, l.Learned)
		}
	}

	// Gloria and Tanisha link to the two 30s females (Breast Cancer,
	// HIV): ambiguous, nothing learned.
	for _, name := range []string{"Gloria", "Tanisha"} {
		l := byID[name]
		if len(l.Candidates) != 2 || len(l.Learned) != 0 {
			t.Errorf("%s = %+v", name, l)
		}
	}
}

func TestSummarize(t *testing.T) {
	in := paperIntruder(t)
	links, err := in.Attack(maskedPatients(t), []string{"Illness"})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(links)
	if s.Individuals != 6 || s.Linked != 6 {
		t.Errorf("summary = %+v", s)
	}
	if s.UniquelyIdentified != 0 {
		t.Errorf("UniquelyIdentified = %d, want 0 (2-anonymous)", s.UniquelyIdentified)
	}
	if s.AttributeDisclosed != 2 {
		t.Errorf("AttributeDisclosed = %d, want 2 (Sam and Eric)", s.AttributeDisclosed)
	}
	if s.MaxIdentityRisk != 0.5 {
		t.Errorf("MaxIdentityRisk = %g, want 0.5", s.MaxIdentityRisk)
	}
	if s.ExpectedReidentifications != 3 {
		t.Errorf("ExpectedReidentifications = %g, want 3 (6 x 1/2)", s.ExpectedReidentifications)
	}
}

func TestAttackNoMatch(t *testing.T) {
	in := paperIntruder(t)
	// External individual outside every masked group.
	sch := table.MustSchema(
		table.Field{Name: "Name", Type: table.String},
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	ext, err := table.FromText(sch, [][]string{{"Zoe", "75", "F", "43102"}})
	if err != nil {
		t.Fatal(err)
	}
	in.External = ext
	links, err := in.Attack(maskedPatients(t), []string{"Illness"})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 || len(links[0].Candidates) != 0 || links[0].IdentityRisk != 0 {
		t.Errorf("links = %+v", links)
	}
	s := Summarize(links)
	if s.Linked != 0 || s.ExpectedReidentifications != 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestAttackUniqueIdentification(t *testing.T) {
	// Masked data with a singleton group: identity disclosure.
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	mm, err := table.FromText(sch, [][]string{
		{"70", "43102", "F", "Anemia"},
	})
	if err != nil {
		t.Fatal(err)
	}
	extSch := table.MustSchema(
		table.Field{Name: "Name", Type: table.String},
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	ext, err := table.FromText(extSch, [][]string{{"Rita", "74", "F", "43102"}})
	if err != nil {
		t.Fatal(err)
	}
	in := paperIntruder(t)
	in.External = ext
	links, err := in.Attack(mm, []string{"Illness"})
	if err != nil {
		t.Fatal(err)
	}
	l := links[0]
	if len(l.Candidates) != 1 || l.IdentityRisk != 1 {
		t.Fatalf("linkage = %+v", l)
	}
	if l.Learned["Illness"] != "Anemia" {
		t.Errorf("learned = %v", l.Learned)
	}
	s := Summarize(links)
	if s.UniquelyIdentified != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestAttackValidation(t *testing.T) {
	in := paperIntruder(t)
	mm := maskedPatients(t)

	bad := *in
	bad.External = nil
	if _, err := bad.Attack(mm, nil); err == nil {
		t.Error("nil external accepted")
	}
	bad = *in
	bad.QIs = nil
	if _, err := bad.Attack(mm, nil); err == nil {
		t.Error("no QIs accepted")
	}
	bad = *in
	bad.IDAttr = "Missing"
	if _, err := bad.Attack(mm, nil); err == nil {
		t.Error("missing ID column accepted")
	}
	bad = *in
	bad.QIs = []string{"Age", "Missing", "Sex"}
	if _, err := bad.Attack(mm, nil); err == nil {
		t.Error("missing QI accepted")
	}
	if _, err := in.Attack(mm, []string{"Missing"}); err == nil {
		t.Error("missing confidential attribute accepted")
	}
	if _, err := in.Attack(nil, nil); err == nil {
		t.Error("nil masked accepted")
	}
}

// TestAttackWithoutGeneralization: a nil hierarchy set means the
// intruder matches raw values.
func TestAttackWithoutGeneralization(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	mm, err := table.FromText(sch, [][]string{
		{"29", "43102", "M", "Flu"},
		{"29", "43102", "M", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	extSch := table.MustSchema(
		table.Field{Name: "Name", Type: table.String},
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	ext, err := table.FromText(extSch, [][]string{{"Sam", "29", "M", "43102"}})
	if err != nil {
		t.Fatal(err)
	}
	in := &Intruder{External: ext, IDAttr: "Name", QIs: []string{"Age", "ZipCode", "Sex"}}
	links, err := in.Attack(mm, []string{"Illness"})
	if err != nil {
		t.Fatal(err)
	}
	if len(links[0].Candidates) != 2 || links[0].Learned["Illness"] != "Flu" {
		t.Errorf("linkage = %+v", links[0])
	}
}

func TestMeasures(t *testing.T) {
	mm := maskedPatients(t)
	m, err := Measure(mm, []string{"Age", "ZipCode", "Sex"})
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if m.Records != 6 || m.Groups != 3 {
		t.Errorf("records/groups = %d/%d", m.Records, m.Groups)
	}
	if m.MinGroup != 2 || m.MaxGroup != 2 {
		t.Errorf("group sizes = %d/%d", m.MinGroup, m.MaxGroup)
	}
	if m.ProsecutorMax != 0.5 || m.JournalistRisk != 0.5 {
		t.Errorf("prosecutor/journalist = %g/%g", m.ProsecutorMax, m.JournalistRisk)
	}
	if m.MarketerRisk != 0.5 || m.ProsecutorAvg != 0.5 {
		t.Errorf("marketer/avg = %g/%g", m.MarketerRisk, m.ProsecutorAvg)
	}
	if m.UniqueRecords != 0 {
		t.Errorf("uniques = %d", m.UniqueRecords)
	}
	if m.AtRisk != 6 {
		t.Errorf("at risk = %d (all groups < 5)", m.AtRisk)
	}
	if m.SatisfiesThreshold(0.5) != true || m.SatisfiesThreshold(0.2) != false {
		t.Error("threshold checks broken")
	}
}

func TestMeasuresSingletons(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "Q", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{{"a"}, {"b"}, {"b"}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(tbl, []string{"Q"})
	if err != nil {
		t.Fatal(err)
	}
	if m.UniqueRecords != 1 || m.MinGroup != 1 || m.ProsecutorMax != 1 {
		t.Errorf("measures = %+v", m)
	}
	if m.SatisfiesThreshold(0.9) {
		t.Error("singleton should violate any threshold < 1")
	}
}

func TestMeasuresEmptyAndErrors(t *testing.T) {
	sch := table.MustSchema(table.Field{Name: "Q", Type: table.String})
	empty, err := table.FromText(sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(empty, []string{"Q"})
	if err != nil || m.Groups != 0 {
		t.Errorf("empty measures = %+v, %v", m, err)
	}
	if !m.SatisfiesThreshold(0.01) {
		t.Error("empty release should satisfy every threshold")
	}
	if _, err := Measure(empty, nil); err == nil {
		t.Error("no QIs accepted")
	}
	if _, err := Measure(empty, []string{"Nope"}); err == nil {
		t.Error("unknown QI accepted")
	}
}
