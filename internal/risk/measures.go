package risk

import (
	"fmt"

	"psk/internal/table"
)

// Aggregate re-identification risk measures in the three standard
// attacker models of the disclosure-control literature (and of Truta's
// earlier disclosure-risk paper the ICDE paper builds on):
//
//   - Prosecutor: the attacker targets a specific person known to be in
//     the release; the per-record risk is 1/|group|.
//   - Journalist: the attacker wants to re-identify anyone from an
//     identified external population containing the release; the
//     binding risk is the weakest group, 1/min|group|.
//   - Marketer: the attacker wants to re-identify as many records as
//     possible; the relevant number is the expected fraction of
//     correct matches, avg(1/|group|) = #groups/n.

// Measures aggregates group-size-based disclosure risk for a masked
// microdata with the given quasi-identifiers.
type Measures struct {
	// Records is the number of released tuples.
	Records int
	// Groups is the number of QI-equivalence classes.
	Groups int
	// MinGroup and MaxGroup are the extreme class sizes.
	MinGroup, MaxGroup int
	// ProsecutorMax is the maximum per-record risk, 1/MinGroup.
	ProsecutorMax float64
	// ProsecutorAvg is the mean per-record risk.
	ProsecutorAvg float64
	// JournalistRisk is 1/MinGroup (equal to ProsecutorMax without an
	// external frame; kept separate for reporting clarity).
	JournalistRisk float64
	// MarketerRisk is Groups/Records: the expected fraction of records
	// an attacker matching groups uniformly re-identifies correctly.
	MarketerRisk float64
	// UniqueRecords counts singleton classes (population uniques in the
	// release).
	UniqueRecords int
	// AtRisk counts records whose per-record risk exceeds 0.2 (groups
	// smaller than 5), the conventional "high risk" reporting line.
	AtRisk int
}

// Measure computes the risk measures for the masked microdata.
func Measure(mm *table.Table, qis []string) (Measures, error) {
	if len(qis) == 0 {
		return Measures{}, fmt.Errorf("risk: no quasi-identifiers")
	}
	groups, err := mm.GroupBy(qis...)
	if err != nil {
		return Measures{}, err
	}
	m := Measures{Records: mm.NumRows(), Groups: len(groups)}
	if len(groups) == 0 {
		return m, nil
	}
	m.MinGroup = groups[0].Size()
	for _, g := range groups {
		size := g.Size()
		if size < m.MinGroup {
			m.MinGroup = size
		}
		if size > m.MaxGroup {
			m.MaxGroup = size
		}
		if size == 1 {
			m.UniqueRecords++
		}
		if size < 5 {
			m.AtRisk += size
		}
	}
	m.ProsecutorMax = 1 / float64(m.MinGroup)
	m.JournalistRisk = m.ProsecutorMax
	m.MarketerRisk = float64(m.Groups) / float64(m.Records)
	m.ProsecutorAvg = m.MarketerRisk // avg over records of 1/|group| = groups/n
	return m, nil
}

// SatisfiesThreshold reports whether every record's re-identification
// risk is at most maxRisk (e.g. 0.2 for the HIPAA-style "groups of at
// least five" rule; 1/k for k-anonymity).
func (m Measures) SatisfiesThreshold(maxRisk float64) bool {
	if m.Records == 0 {
		return true
	}
	return m.ProsecutorMax <= maxRisk
}
