// Package risk implements disclosure-risk measurement: the record
// linkage attack of the paper's Section 2 (an intruder joining masked
// microdata with an external identified table on the key attributes)
// and aggregate identity/attribute disclosure risk measures.
package risk

import (
	"fmt"

	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/table"
)

// Intruder models an attacker holding an external identified table
// (e.g. a voter list: Name + key attributes at ground level) and full
// knowledge of the generalization applied to the masked microdata —
// the paper's "the intruder also knows that Age was generalized to
// multiples of 10".
type Intruder struct {
	// External is the identified table; it must contain IDAttr and
	// every key attribute at ground level.
	External *table.Table
	// IDAttr names the identifying column of the external table.
	IDAttr string
	// QIs are the key attributes shared by both tables.
	QIs []string
	// Hierarchies and Node describe the generalization the masked
	// microdata was produced with; the intruder generalizes the
	// external values the same way before matching.
	Hierarchies *hierarchy.Set
	Node        lattice.Node
}

// Linkage is the attack result for one external individual.
type Linkage struct {
	// ID is the individual's identifier from the external table.
	ID string
	// Candidates are the masked-microdata row indices whose key
	// attribute values match the individual's generalized key values.
	Candidates []int
	// IdentityRisk is 1/len(Candidates), the probability of a correct
	// re-identification by uniform guessing; 0 when no rows match.
	IdentityRisk float64
	// Learned maps each confidential attribute to the value the
	// intruder learns with certainty — present only when all candidate
	// rows agree on it (attribute disclosure without identity
	// disclosure). Nil when nothing is learned.
	Learned map[string]string
}

// Attack links every external individual against the masked microdata
// and reports, for each, the candidate set, identity risk and any
// attribute disclosures over the given confidential attributes.
func (in *Intruder) Attack(masked *table.Table, confidential []string) ([]Linkage, error) {
	if in.External == nil || masked == nil {
		return nil, fmt.Errorf("risk: nil table")
	}
	if len(in.QIs) == 0 {
		return nil, fmt.Errorf("risk: no key attributes to link on")
	}
	idCol, err := in.External.Column(in.IDAttr)
	if err != nil {
		return nil, fmt.Errorf("risk: external table: %w", err)
	}
	extCols := make([]table.Column, len(in.QIs))
	for i, q := range in.QIs {
		c, err := in.External.Column(q)
		if err != nil {
			return nil, fmt.Errorf("risk: external table: %w", err)
		}
		extCols[i] = c
	}
	mmCols := make([]table.Column, len(in.QIs))
	for i, q := range in.QIs {
		c, err := masked.Column(q)
		if err != nil {
			return nil, fmt.Errorf("risk: masked table: %w", err)
		}
		mmCols[i] = c
	}
	confCols := make([]table.Column, len(confidential))
	for i, s := range confidential {
		c, err := masked.Column(s)
		if err != nil {
			return nil, fmt.Errorf("risk: masked table: %w", err)
		}
		confCols[i] = c
	}

	// Index the masked microdata by its (already generalized) key
	// values.
	index := make(map[string][]int, masked.NumRows())
	for r := 0; r < masked.NumRows(); r++ {
		key := ""
		for _, c := range mmCols {
			key += c.Value(r).Str() + "\x00"
		}
		index[key] = append(index[key], r)
	}

	out := make([]Linkage, 0, in.External.NumRows())
	for e := 0; e < in.External.NumRows(); e++ {
		key := ""
		for i, c := range extCols {
			v := c.Value(e).Str()
			if in.Hierarchies != nil && in.Node != nil {
				h, err := in.Hierarchies.Get(in.QIs[i])
				if err != nil {
					return nil, fmt.Errorf("risk: %w", err)
				}
				v, err = h.Generalize(v, in.Node[i])
				if err != nil {
					return nil, fmt.Errorf("risk: generalizing external value: %w", err)
				}
			}
			key += v + "\x00"
		}
		l := Linkage{ID: idCol.Value(e).Str(), Candidates: index[key]}
		if len(l.Candidates) > 0 {
			l.IdentityRisk = 1 / float64(len(l.Candidates))
			for i, cc := range confCols {
				first := cc.Value(l.Candidates[0]).Str()
				constant := true
				for _, r := range l.Candidates[1:] {
					if cc.Value(r).Str() != first {
						constant = false
						break
					}
				}
				if constant {
					if l.Learned == nil {
						l.Learned = make(map[string]string)
					}
					l.Learned[confidential[i]] = first
				}
			}
		}
		out = append(out, l)
	}
	return out, nil
}

// Summary aggregates an attack over all external individuals.
type Summary struct {
	// Individuals is the number of external records attacked.
	Individuals int
	// Linked is how many matched at least one masked row.
	Linked int
	// UniquelyIdentified is how many matched exactly one row (identity
	// disclosure).
	UniquelyIdentified int
	// AttributeDisclosed is how many learned at least one confidential
	// value with certainty.
	AttributeDisclosed int
	// MaxIdentityRisk is the highest per-individual identity risk.
	MaxIdentityRisk float64
	// ExpectedReidentifications sums the identity risks: the expected
	// number of correct guesses if the intruder guesses once per
	// individual.
	ExpectedReidentifications float64
}

// Summarize aggregates linkage results.
func Summarize(links []Linkage) Summary {
	s := Summary{Individuals: len(links)}
	for _, l := range links {
		if len(l.Candidates) == 0 {
			continue
		}
		s.Linked++
		if len(l.Candidates) == 1 {
			s.UniquelyIdentified++
		}
		if len(l.Learned) > 0 {
			s.AttributeDisclosed++
		}
		if l.IdentityRisk > s.MaxIdentityRisk {
			s.MaxIdentityRisk = l.IdentityRisk
		}
		s.ExpectedReidentifications += l.IdentityRisk
	}
	return s
}
