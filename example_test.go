package psk_test

import (
	"fmt"
	"log"

	"psk"
)

// patientRelease builds the paper's Table 1 masked microdata.
func patientRelease() *psk.Table {
	schema := psk.MustSchema(
		psk.Field{Name: "Age", Type: psk.String},
		psk.Field{Name: "ZipCode", Type: psk.String},
		psk.Field{Name: "Sex", Type: psk.String},
		psk.Field{Name: "Illness", Type: psk.String},
	)
	tbl, err := psk.FromText(schema, [][]string{
		{"50", "43102", "M", "Colon Cancer"},
		{"30", "43102", "F", "Breast Cancer"},
		{"30", "43102", "F", "HIV"},
		{"20", "43102", "M", "Diabetes"},
		{"20", "43102", "M", "Diabetes"},
		{"50", "43102", "M", "Heart Disease"},
	})
	if err != nil {
		log.Fatal(err)
	}
	return tbl
}

// The paper's Table 1 is 2-anonymous yet only 1-sensitive: the two
// Diabetes tuples form a group with a constant confidential value.
func ExampleIsPSensitiveKAnonymous() {
	mm := patientRelease()
	qis := []string{"Age", "ZipCode", "Sex"}

	kAnon, _ := psk.IsKAnonymous(mm, qis, 2)
	pSens, _ := psk.IsPSensitiveKAnonymous(mm, qis, []string{"Illness"}, 2, 2)
	s, _ := psk.Sensitivity(mm, qis, []string{"Illness"})

	fmt.Println("2-anonymous:", kAnon)
	fmt.Println("2-sensitive 2-anonymous:", pSens)
	fmt.Println("sensitivity:", s)
	// Output:
	// 2-anonymous: true
	// 2-sensitive 2-anonymous: false
	// sensitivity: 1
}

// The two necessary conditions can be evaluated on the initial
// microdata and reused for every masking (Theorems 1-2).
func ExampleMaxGroups() {
	mm := patientRelease()
	maxP, _ := psk.MaxP(mm, []string{"Illness"})
	maxGroups, _ := psk.MaxGroups(mm, []string{"Illness"}, 2)
	fmt.Println("maxP:", maxP)
	fmt.Println("maxGroups for p=2:", maxGroups)
	// Output:
	// maxP: 5
	// maxGroups for p=2: 4
}

// The paper expresses its checks in SQL; Query runs them literally.
func ExampleQuery() {
	mm := patientRelease()
	out, err := psk.Query(map[string]*psk.Table{"Patient": mm},
		"SELECT Age, COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age HAVING COUNT(DISTINCT Illness) < 2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Format(-1))
	// Output:
	// Age  COUNT(*)
	// 20   2
}

// Anonymize searches the generalization lattice for a p-k-minimal
// masking (the paper's Algorithm 3).
func ExampleAnonymize() {
	schema := psk.MustSchema(
		psk.Field{Name: "ZipCode", Type: psk.String},
		psk.Field{Name: "Illness", Type: psk.String},
	)
	data, err := psk.FromText(schema, [][]string{
		{"41076", "Flu"}, {"41077", "Asthma"}, {"41078", "Diabetes"},
		{"43101", "Flu"}, {"43102", "Asthma"}, {"43103", "Diabetes"},
	})
	if err != nil {
		log.Fatal(err)
	}
	zip, err := psk.NewPrefixStepsHierarchy("ZipCode", 5, []int{2, 5})
	if err != nil {
		log.Fatal(err)
	}
	hs, err := psk.NewHierarchies(zip)
	if err != nil {
		log.Fatal(err)
	}
	res, err := psk.Anonymize(data, psk.Config{
		QuasiIdentifiers: []string{"ZipCode"},
		Confidential:     []string{"Illness"},
		Hierarchies:      hs,
		K:                3,
		P:                2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("found:", res.Found)
	fmt.Println("node:", res.Node)
	fmt.Println(res.Masked.Format(-1))
	// Output:
	// found: true
	// node: <1>
	// ZipCode  Illness
	// 410**    Flu
	// 410**    Asthma
	// 410**    Diabetes
	// 431**    Flu
	// 431**    Asthma
	// 431**    Diabetes
}
